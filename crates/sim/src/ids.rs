//! Core identifier newtypes and compact per-process containers: process
//! identifiers, message identifiers, the global logical clock, the
//! width-generic [`WideSet`] bitset (and its workspace-wide alias
//! [`ProcessSet`]), and the [`SenderMap`] dense map.
//!
//! The paper (Section II) considers a system `Π = {p1, …, pn}` of `n`
//! processes with unique ids `{1, …, n}`, and defines *time* as the index of
//! a step in a run: the `i`-th step of a run occurs at time `i`. Processes do
//! **not** have access to time; it exists only in the meta-level analysis
//! (failure patterns, failure-detector histories).
//!
//! Internally we use 0-based indices for processes; [`ProcessId::display_id`]
//! recovers the paper's 1-based numbering.
//!
//! Every set of processes in the workspace — partition blocks, quorum and
//! leader samples, faulty/correct sets, delivery filters — is a
//! [`ProcessSet`]: a fixed-capacity bitset over [`ProcessId`] whose set
//! algebra is branch-free word arithmetic over `[u64; W]` limbs. The width
//! `W` is generic ([`WideSet`]); the workspace pins one width for all
//! simulator state via the [`ProcessSet`] alias ([`PSET_LIMBS`] limbs, i.e.
//! capacity [`ProcessSet::CAPACITY`]). Per-sender round state
//! (synchronous-round inboxes, stage-2 info tables, promise ledgers) uses
//! [`SenderMap`], a dense `Vec<Option<M>>` keyed by sender index.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

/// Identifier of a process in the system `Π = {p1, …, pn}`.
///
/// Wraps a 0-based index. The `Display` impl prints the paper-style 1-based
/// name (`p1`, `p2`, …).
///
/// # Examples
///
/// ```
/// use kset_sim::ProcessId;
///
/// let p = ProcessId::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.display_id(), 1);
/// assert_eq!(p.to_string(), "p1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process identifier from a 0-based index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the 0-based index of this process.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns the paper-style 1-based identifier.
    pub const fn display_id(self) -> usize {
        self.0 + 1
    }

    /// Iterates over all process ids of a system of size `n`, in id order.
    ///
    /// # Examples
    ///
    /// ```
    /// use kset_sim::ProcessId;
    ///
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + ExactSizeIterator {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.display_id())
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

/// Globally unique identifier of a message instance.
///
/// Every send produces a fresh `MsgId`; identifiers are assigned in send
/// order by the simulation engine and are therefore deterministic for a
/// deterministic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(u64);

impl MsgId {
    /// Creates a message id from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        MsgId(raw)
    }

    /// Returns the raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Global logical time: the index of a step in a run (Section II-C).
///
/// `Time(0)` is the instant of the initial configuration; the first step of
/// a run occurs at `Time(1)`.
///
/// # Examples
///
/// ```
/// use kset_sim::Time;
///
/// let t = Time::ZERO;
/// assert_eq!(t.next(), Time::new(1));
/// assert!(t < t.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The instant of the initial configuration.
    pub const ZERO: Time = Time(0);

    /// Creates a time from a raw step index.
    pub const fn new(raw: u64) -> Self {
        Time(raw)
    }

    /// Returns the raw step index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The immediately following instant.
    #[must_use]
    pub const fn next(self) -> Time {
        Time(self.0 + 1)
    }

    /// Saturating difference `self - earlier` in steps.
    #[must_use]
    pub const fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(raw: u64) -> Self {
        Time(raw)
    }
}

/// Number of 64-bit limbs in the workspace-wide [`ProcessSet`] alias.
///
/// The simulator, failure-detector, agreement and impossibility layers are
/// all written against the width-generic [`WideSet`] API; this constant pins
/// the one width they are compiled at. `8` limbs ⇒ systems of up to
/// `8 × 64 = 512` processes. Bumping it (and recompiling) is the entire
/// migration story for larger systems.
pub const PSET_LIMBS: usize = 8;

/// A set of processes: the workspace-wide instantiation of [`WideSet`] at
/// [`PSET_LIMBS`] limbs (capacity [`ProcessSet::CAPACITY`] = 512 processes).
///
/// Everything documented on [`WideSet`] applies; this alias exists so the
/// rest of the workspace states "a set of processes" without naming a width.
pub type ProcessSet = WideSet<PSET_LIMBS>;

/// Iterator over the members of a [`ProcessSet`], ascending by id.
pub type ProcessSetIter = WideSetIter<PSET_LIMBS>;

/// Error returned when a process id (or a system size) does not fit in a
/// set's fixed capacity.
///
/// Produced by the fallible constructors [`WideSet::try_insert`],
/// [`WideSet::try_singleton`] and [`WideSet::try_full`], and surfaced by the
/// simulator's construction paths (`Simulation::try_new`,
/// `LockStep::try_new`) so oversized systems are rejected at the boundary
/// with a typed error instead of a panic deep inside a set operation.
///
/// # Examples
///
/// ```
/// use kset_sim::{ProcessId, ProcessSet};
///
/// let err = ProcessSet::try_full(ProcessSet::CAPACITY + 1).unwrap_err();
/// assert_eq!(err.requested(), ProcessSet::CAPACITY + 1);
/// assert_eq!(err.capacity(), ProcessSet::CAPACITY);
/// assert!(err.to_string().contains("capacity"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    requested: usize,
    capacity: usize,
}

impl CapacityError {
    /// Creates a capacity error for a requested id/size against a capacity.
    pub const fn new(requested: usize, capacity: usize) -> Self {
        CapacityError {
            requested,
            capacity,
        }
    }

    /// The 0-based process index (or requested system size) that did not
    /// fit.
    pub const fn requested(self) -> usize {
        self.requested
    }

    /// The capacity that was exceeded.
    pub const fn capacity(self) -> usize {
        self.capacity
    }
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} exceeds the ProcessSet capacity of {}",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for CapacityError {}

/// A set of small integers (process indices), stored as `W` 64-bit limbs.
///
/// Bit `i` of the concatenated limbs is set iff `ProcessId::new(i)` is a
/// member (limb `i / 64`, bit `i % 64`). All set algebra — union,
/// intersection, difference, subset and disjointness tests — is branch-free
/// word arithmetic over the limb array, which LLVM auto-vectorizes at the
/// widths the workspace uses; the type is `Copy`, which is what makes it
/// viable in the simulator's hot paths (buffer delivery filters, failure
/// patterns, explorer state, failure-detector samples).
///
/// Capacity is `W × 64` members. The *capacity invariant*: a `WideSet<W>`
/// never holds an index ≥ `W × 64` — the panicking mutators enforce it with
/// the message of a [`CapacityError`], and the `try_` constructors surface
/// the error for callers that validate sizes at a system boundary.
///
/// Iteration yields members in ascending id order, and `Ord` compares sets
/// as the big integers their bits spell (most-significant limb first), so a
/// `WideSet<2>` orders exactly like the `u128` bitset it generalizes.
///
/// # Examples
///
/// ```
/// use kset_sim::{ProcessId, WideSet};
///
/// // Four limbs ⇒ room for 256 processes.
/// let mut s: WideSet<4> = WideSet::new();
/// assert_eq!(WideSet::<4>::CAPACITY, 256);
/// s.insert(ProcessId::new(200));
/// s.insert(ProcessId::new(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(ProcessId::new(200)));
/// assert_eq!(s.to_string(), "{p4, p201}");
///
/// // Ids beyond the capacity are a typed error on the `try_` API:
/// assert!(s.try_insert(ProcessId::new(256)).is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct WideSet<const W: usize> {
    limbs: [u64; W],
}

impl<const W: usize> Hash for WideSet<W> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Feed only the limbs up to the highest non-zero one. Equal sets
        // have identical limb arrays, so the (count, prefix) encoding is
        // Eq-consistent — and a set confined to the first 128 ids hashes at
        // the cost of the old `u128` representation instead of paying for
        // all W limbs. State fingerprinting in the simulator hot loop hashes
        // several sets per step, which is what makes this worth it.
        let mut hi = W;
        while hi > 0 && self.limbs[hi - 1] == 0 {
            hi -= 1;
        }
        state.write_usize(hi);
        for &limb in &self.limbs[..hi] {
            state.write_u64(limb);
        }
    }
}

impl<const W: usize> WideSet<W> {
    /// The maximum system size representable: `W × 64`.
    pub const CAPACITY: usize = W * 64;

    /// The empty set.
    pub const EMPTY: WideSet<W> = WideSet { limbs: [0; W] };

    /// Creates an empty set.
    pub const fn new() -> Self {
        Self::EMPTY
    }

    /// The singleton `{p}`.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= CAPACITY`; [`WideSet::try_singleton`] is the
    /// fallible form.
    pub fn singleton(p: ProcessId) -> Self {
        match Self::try_singleton(p) {
            Ok(s) => s,
            // kset-lint: allow(panic-in-library): documented panicking convenience wrapper over try_singleton
            Err(e) => panic!("{e}"),
        }
    }

    /// The singleton `{p}`, or a [`CapacityError`] if `p` does not fit.
    pub fn try_singleton(p: ProcessId) -> Result<Self, CapacityError> {
        let mut s = Self::EMPTY;
        s.try_insert(p)?;
        Ok(s)
    }

    /// The full system `Π = {p1, …, pn}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > CAPACITY`; [`WideSet::try_full`] is the fallible form.
    pub fn full(n: usize) -> Self {
        match Self::try_full(n) {
            Ok(s) => s,
            // kset-lint: allow(panic-in-library): documented panicking convenience wrapper over try_full
            Err(e) => panic!("{e}"),
        }
    }

    /// The full system `Π = {p1, …, pn}`, or a [`CapacityError`] if `n`
    /// exceeds the capacity.
    ///
    /// # Examples
    ///
    /// ```
    /// use kset_sim::WideSet;
    ///
    /// assert_eq!(WideSet::<8>::try_full(512).unwrap().len(), 512);
    /// assert!(WideSet::<8>::try_full(513).is_err());
    /// ```
    pub fn try_full(n: usize) -> Result<Self, CapacityError> {
        if n > Self::CAPACITY {
            return Err(CapacityError::new(n, Self::CAPACITY));
        }
        let mut limbs = [0u64; W];
        let mut i = 0;
        let mut rem = n;
        while rem >= 64 {
            limbs[i] = u64::MAX;
            rem -= 64;
            i += 1;
        }
        if rem > 0 {
            limbs[i] = (1u64 << rem) - 1;
        }
        let s = WideSet { limbs };
        debug_assert_eq!(
            s.len(),
            n,
            "WideSet::try_full must set exactly the first n bits and no stragglers above n"
        );
        Ok(s)
    }

    /// Builds a set directly from a `u128` bit pattern (bit `i` ⇔ `p_{i+1}`),
    /// the pre-wide-set interchange format.
    ///
    /// # Panics
    ///
    /// Panics if `W == 1` and `bits` has a one above bit 63 (the pattern
    /// does not fit). For `W ≥ 2` every `u128` fits.
    pub const fn from_bits(bits: u128) -> Self {
        let mut limbs = [0u64; W];
        limbs[0] = bits as u64;
        let hi = (bits >> 64) as u64;
        if W >= 2 {
            limbs[1] = hi;
        } else {
            assert!(hi == 0, "bit pattern exceeds the set capacity");
        }
        WideSet { limbs }
    }

    /// The raw bit pattern as a `u128`, for sets confined to the first 128
    /// ids.
    ///
    /// # Panics
    ///
    /// Panics if the set has a member ≥ 128; use [`WideSet::limbs`] for a
    /// width-agnostic view.
    pub fn bits(self) -> u128 {
        let mut i = 2;
        while i < W {
            assert!(
                self.limbs[i] == 0,
                "set has members ≥ 128 and does not fit in u128; use limbs()"
            );
            i += 1;
        }
        let lo = self.limbs[0] as u128;
        if W >= 2 {
            lo | (self.limbs[1] as u128) << 64
        } else {
            lo
        }
    }

    /// The raw limb array (limb `i` holds ids `64·i .. 64·(i+1)`).
    #[inline]
    pub const fn limbs(&self) -> &[u64; W] {
        &self.limbs
    }

    /// Builds a set directly from its limb array.
    #[inline]
    pub const fn from_limbs(limbs: [u64; W]) -> Self {
        WideSet { limbs }
    }

    /// Number of members.
    ///
    /// Two interleaved accumulators break the serial `add` dependency
    /// chain over the popcounts; at `W = 8` the loop fully unrolls into
    /// straight-line `popcnt` pairs (see the `e7_wide_sets` bench group).
    #[inline]
    pub const fn len(self) -> usize {
        let mut a = 0usize;
        let mut b = 0usize;
        let mut i = 0;
        while i + 1 < W {
            a += self.limbs[i].count_ones() as usize;
            b += self.limbs[i + 1].count_ones() as usize;
            i += 2;
        }
        if i < W {
            a += self.limbs[i].count_ones() as usize;
        }
        a + b
    }

    /// Whether the set has no members.
    ///
    /// OR-accumulates the limbs and tests once, instead of branching per
    /// limb.
    #[inline]
    pub const fn is_empty(self) -> bool {
        let mut acc = 0u64;
        let mut i = 0;
        while i < W {
            acc |= self.limbs[i];
            i += 1;
        }
        acc == 0
    }

    /// Whether `p` is a member.
    #[inline]
    pub const fn contains(self, p: ProcessId) -> bool {
        let limb = p.index() / 64;
        limb < W && self.limbs[limb] >> (p.index() % 64) & 1 == 1
    }

    /// Inserts `p`; returns whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= CAPACITY`; [`WideSet::try_insert`] is the
    /// fallible form.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        match self.try_insert(p) {
            Ok(fresh) => fresh,
            // kset-lint: allow(panic-in-library): documented panicking convenience wrapper over try_insert
            Err(e) => panic!("{e}"),
        }
    }

    /// Inserts `p` if it fits, returning whether it was newly added, or a
    /// [`CapacityError`] if `p.index() >= CAPACITY` (the set is unchanged).
    ///
    /// # Examples
    ///
    /// ```
    /// use kset_sim::{ProcessId, WideSet};
    ///
    /// let mut s: WideSet<2> = WideSet::new();
    /// assert_eq!(s.try_insert(ProcessId::new(127)), Ok(true));
    /// assert_eq!(s.try_insert(ProcessId::new(127)), Ok(false));
    /// assert!(s.try_insert(ProcessId::new(128)).is_err());
    /// ```
    #[inline]
    pub fn try_insert(&mut self, p: ProcessId) -> Result<bool, CapacityError> {
        if p.index() >= Self::CAPACITY {
            return Err(CapacityError::new(p.index(), Self::CAPACITY));
        }
        let bit = 1u64 << (p.index() % 64);
        let limb = &mut self.limbs[p.index() / 64];
        let fresh = *limb & bit == 0;
        *limb |= bit;
        Ok(fresh)
    }

    /// Removes `p`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, p: ProcessId) -> bool {
        if p.index() >= Self::CAPACITY {
            return false;
        }
        let bit = 1u64 << (p.index() % 64);
        let limb = &mut self.limbs[p.index() / 64];
        let present = *limb & bit != 0;
        *limb &= !bit;
        present
    }

    /// The smallest member, if any.
    pub fn first(self) -> Option<ProcessId> {
        let mut i = 0;
        while i < W {
            if self.limbs[i] != 0 {
                return Some(ProcessId::new(
                    i * 64 + self.limbs[i].trailing_zeros() as usize,
                ));
            }
            i += 1;
        }
        None
    }

    /// `self ∪ other`.
    #[inline]
    #[must_use]
    pub const fn union(self, other: WideSet<W>) -> WideSet<W> {
        let mut limbs = [0u64; W];
        let mut i = 0;
        while i < W {
            limbs[i] = self.limbs[i] | other.limbs[i];
            i += 1;
        }
        WideSet { limbs }
    }

    /// `self ∩ other`.
    #[inline]
    #[must_use]
    pub const fn intersection(self, other: WideSet<W>) -> WideSet<W> {
        let mut limbs = [0u64; W];
        let mut i = 0;
        while i < W {
            limbs[i] = self.limbs[i] & other.limbs[i];
            i += 1;
        }
        WideSet { limbs }
    }

    /// `self \ other`.
    #[inline]
    #[must_use]
    pub const fn difference(self, other: WideSet<W>) -> WideSet<W> {
        let mut limbs = [0u64; W];
        let mut i = 0;
        while i < W {
            limbs[i] = self.limbs[i] & !other.limbs[i];
            i += 1;
        }
        WideSet { limbs }
    }

    /// `Π \ self` for a system of size `n`.
    #[must_use]
    pub fn complement(self, n: usize) -> WideSet<W> {
        let out = Self::full(n).difference(self);
        debug_assert!(
            out.is_subset(Self::full(n)),
            "complement(n) must stay confined to the first n ids"
        );
        out
    }

    /// Whether every member of `self` is in `other`.
    ///
    /// Branch-free: the straggler limbs are OR-accumulated and tested
    /// once, so the fixed-`W` loop unrolls with no per-limb exit.
    #[inline]
    pub const fn is_subset(self, other: WideSet<W>) -> bool {
        let mut acc = 0u64;
        let mut i = 0;
        while i < W {
            acc |= self.limbs[i] & !other.limbs[i];
            i += 1;
        }
        acc == 0
    }

    /// Whether the sets share no member.
    ///
    /// Branch-free, like [`WideSet::is_subset`].
    #[inline]
    pub const fn is_disjoint(self, other: WideSet<W>) -> bool {
        let mut acc = 0u64;
        let mut i = 0;
        while i < W {
            acc |= self.limbs[i] & other.limbs[i];
            i += 1;
        }
        acc == 0
    }

    /// Iterates over the members in ascending id order.
    pub fn iter(self) -> WideSetIter<W> {
        WideSetIter {
            limbs: self.limbs,
            limb: 0,
        }
    }

    /// Enumerates every **non-empty** subset of `self`, starting with
    /// `self` itself and descending in the bit-pattern order of the classic
    /// `sub = (sub - 1) & mask` walk, generalized to multi-limb sets by
    /// multi-precision borrow propagation.
    ///
    /// The exhaustive explorer uses this to build per-process delivery
    /// menus; there are `2^len − 1` subsets, so callers bound `len` first.
    ///
    /// # Examples
    ///
    /// ```
    /// use kset_sim::{ProcessId, ProcessSet};
    ///
    /// let s: ProcessSet = [ProcessId::new(0), ProcessId::new(2)].into();
    /// let subs: Vec<String> = s.subsets().map(|t| t.to_string()).collect();
    /// assert_eq!(subs, vec!["{p1, p3}", "{p3}", "{p1}"]);
    /// ```
    pub fn subsets(self) -> SubsetIter<W> {
        SubsetIter {
            mask: self.limbs,
            next: (!self.is_empty()).then_some(self.limbs),
        }
    }
}

impl<const W: usize> Default for WideSet<W> {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl<const W: usize> Ord for WideSet<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare as the big integer the bits spell: most-significant limb
        // first. For W = 2 this is exactly the old u128 numeric order.
        let mut i = W;
        while i > 0 {
            i -= 1;
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }
}

impl<const W: usize> PartialOrd for WideSet<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const W: usize> fmt::Debug for WideSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `{p1, p3}` in both Debug and Display: debug output appears in
        // assertion messages, where the paper-style names read best.
        fmt::Display::fmt(self, f)
    }
}

impl<const W: usize> fmt::Display for WideSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl<const W: usize> BitOr for WideSet<W> {
    type Output = WideSet<W>;

    fn bitor(self, rhs: WideSet<W>) -> WideSet<W> {
        self.union(rhs)
    }
}

impl<const W: usize> BitOrAssign for WideSet<W> {
    fn bitor_assign(&mut self, rhs: WideSet<W>) {
        *self = self.union(rhs);
    }
}

impl<const W: usize> BitAnd for WideSet<W> {
    type Output = WideSet<W>;

    fn bitand(self, rhs: WideSet<W>) -> WideSet<W> {
        self.intersection(rhs)
    }
}

impl<const W: usize> BitAndAssign for WideSet<W> {
    fn bitand_assign(&mut self, rhs: WideSet<W>) {
        *self = self.intersection(rhs);
    }
}

impl<const W: usize> Sub for WideSet<W> {
    type Output = WideSet<W>;

    fn sub(self, rhs: WideSet<W>) -> WideSet<W> {
        self.difference(rhs)
    }
}

impl<const W: usize> SubAssign for WideSet<W> {
    fn sub_assign(&mut self, rhs: WideSet<W>) {
        *self = self.difference(rhs);
    }
}

/// Iterator over the members of a [`WideSet`], ascending by id.
#[derive(Debug, Clone)]
pub struct WideSetIter<const W: usize> {
    limbs: [u64; W],
    limb: usize,
}

impl<const W: usize> Iterator for WideSetIter<W> {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        while self.limb < W {
            let bits = self.limbs[self.limb];
            if bits != 0 {
                let idx = bits.trailing_zeros() as usize;
                self.limbs[self.limb] = bits & (bits - 1);
                return Some(ProcessId::new(self.limb * 64 + idx));
            }
            self.limb += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.limbs[self.limb..]
            .iter()
            .map(|l| l.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl<const W: usize> ExactSizeIterator for WideSetIter<W> {}

/// Iterator over the non-empty subsets of a [`WideSet`], in descending
/// bit-pattern order (see [`WideSet::subsets`]).
#[derive(Debug, Clone)]
pub struct SubsetIter<const W: usize> {
    mask: [u64; W],
    next: Option<[u64; W]>,
}

impl<const W: usize> Iterator for SubsetIter<W> {
    type Item = WideSet<W>;

    fn next(&mut self) -> Option<WideSet<W>> {
        let cur = self.next?;
        // Multi-precision `(cur - 1) & mask`: borrow ripples through zero
        // limbs; `cur != 0` (invariant of `next`) bounds the ripple.
        let mut prev = cur;
        let mut i = 0;
        loop {
            let (v, borrow) = prev[i].overflowing_sub(1);
            prev[i] = v;
            if !borrow {
                break;
            }
            i += 1;
        }
        let mut nonzero = false;
        for (p, m) in prev.iter_mut().zip(&self.mask) {
            *p &= m;
            nonzero |= *p != 0;
        }
        self.next = nonzero.then_some(prev);
        Some(WideSet { limbs: cur })
    }
}

impl<const W: usize> IntoIterator for WideSet<W> {
    type Item = ProcessId;
    type IntoIter = WideSetIter<W>;

    fn into_iter(self) -> WideSetIter<W> {
        self.iter()
    }
}

impl<const W: usize> IntoIterator for &WideSet<W> {
    type Item = ProcessId;
    type IntoIter = WideSetIter<W>;

    fn into_iter(self) -> WideSetIter<W> {
        self.iter()
    }
}

impl<const W: usize> FromIterator<ProcessId> for WideSet<W> {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = WideSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl<const W: usize> Extend<ProcessId> for WideSet<W> {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl<const W: usize, const N: usize> From<[ProcessId; N]> for WideSet<W> {
    fn from(ids: [ProcessId; N]) -> Self {
        ids.into_iter().collect()
    }
}

/// Structure-of-arrays limb planes: the batched-execution layout for many
/// [`WideSet`]s of the same width.
///
/// A batch of `B` sets is stored **limb-major, lane-minor**: one
/// contiguous buffer of `W × B` words where plane `l` (the `l`-th limb of
/// every set) occupies `buf[l·B .. (l+1)·B]`, and lane `b` of plane `l`
/// sits at `buf[l·B + b]`. Batch-wide algebra — union, intersection,
/// and-not, popcount — is then a single pass over the whole buffer with no
/// per-set dispatch, which is exactly the shape LLVM auto-vectorizes (and
/// the shape a later `std::simd` drop-in needs: swap the unrolled scalar
/// loops in the free kernels below for `u64xN` lanes and nothing else
/// moves).
///
/// The free functions ([`union_planes`](planes::union_planes),
/// [`intersect_planes`](planes::intersect_planes),
/// [`andnot_planes`](planes::andnot_planes),
/// [`count_planes`](planes::count_planes),
/// [`lane_counts`](planes::lane_counts)) are the raw kernels over
/// `&[u64]` buffers; [`LimbPlanes`](planes::LimbPlanes) wraps a buffer
/// with its lane count and offers per-lane [`WideSet`] views for the
/// sparse edges of a batched computation (crash masks, per-lane tallies).
///
/// # Examples
///
/// ```
/// use kset_sim::planes::LimbPlanes;
/// use kset_sim::{ProcessId, ProcessSet};
///
/// let mut alive: LimbPlanes<8> = LimbPlanes::filled(4, ProcessSet::full(100));
/// assert_eq!(alive.lane(2).len(), 100);
/// // A crash in lane 2 is one and-not on one word of one plane.
/// alive.lane_remove(2, ProcessId::new(7));
/// assert_eq!(alive.lane(2).len(), 99);
/// assert_eq!(alive.lane(1).len(), 100, "other lanes untouched");
/// ```
pub mod planes {
    use super::{ProcessId, WideSet};

    /// Unroll factor of the plane kernels: eight 64-bit words — one
    /// `WideSet<8>` row, one AVX-512 register — per straight-line block.
    const UNROLL: usize = 8;

    /// `dst[i] |= src[i]` over whole plane buffers.
    ///
    /// # Panics
    ///
    /// Panics if the buffers differ in length.
    #[inline]
    pub fn union_planes(dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "plane buffers must match in length");
        let mut d = dst.chunks_exact_mut(UNROLL);
        let mut s = src.chunks_exact(UNROLL);
        for (d, s) in d.by_ref().zip(s.by_ref()) {
            for i in 0..UNROLL {
                d[i] |= s[i];
            }
        }
        for (d, s) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *d |= *s;
        }
    }

    /// `dst[i] &= src[i]` over whole plane buffers.
    ///
    /// # Panics
    ///
    /// Panics if the buffers differ in length.
    #[inline]
    pub fn intersect_planes(dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "plane buffers must match in length");
        let mut d = dst.chunks_exact_mut(UNROLL);
        let mut s = src.chunks_exact(UNROLL);
        for (d, s) in d.by_ref().zip(s.by_ref()) {
            for i in 0..UNROLL {
                d[i] &= s[i];
            }
        }
        for (d, s) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *d &= *s;
        }
    }

    /// `dst[i] &= !src[i]` over whole plane buffers — the batch-wide crash
    /// mask: clearing a set of processes from every lane at once.
    ///
    /// # Panics
    ///
    /// Panics if the buffers differ in length.
    #[inline]
    pub fn andnot_planes(dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "plane buffers must match in length");
        let mut d = dst.chunks_exact_mut(UNROLL);
        let mut s = src.chunks_exact(UNROLL);
        for (d, s) in d.by_ref().zip(s.by_ref()) {
            for i in 0..UNROLL {
                d[i] &= !s[i];
            }
        }
        for (d, s) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *d &= !*s;
        }
    }

    /// Total population count over a plane buffer.
    #[inline]
    pub fn count_planes(planes: &[u64]) -> u64 {
        let mut acc = [0u64; UNROLL];
        let mut chunks = planes.chunks_exact(UNROLL);
        for c in chunks.by_ref() {
            for i in 0..UNROLL {
                acc[i] += u64::from(c[i].count_ones());
            }
        }
        let mut total: u64 = acc.iter().sum();
        for &w in chunks.remainder() {
            total += u64::from(w.count_ones());
        }
        total
    }

    /// Per-lane population counts of a limb-major buffer: `out[b]` becomes
    /// the member count of lane `b` across all planes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`, `planes.len()` is not a multiple of
    /// `lanes`, or `out.len() != lanes`.
    #[inline]
    pub fn lane_counts(planes: &[u64], lanes: usize, out: &mut [u32]) {
        assert!(lanes > 0, "a plane buffer has at least one lane");
        assert_eq!(planes.len() % lanes, 0, "buffer length must be W × lanes");
        assert_eq!(out.len(), lanes, "one count slot per lane");
        out.fill(0);
        for plane in planes.chunks_exact(lanes) {
            for (o, &w) in out.iter_mut().zip(plane) {
                *o += w.count_ones();
            }
        }
    }

    /// A batch of [`WideSet<W>`]s in limb-major, lane-minor layout (see
    /// the [module docs](self)).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct LimbPlanes<const W: usize> {
        /// `W × lanes` words; plane `l` at `[l·lanes, (l+1)·lanes)`.
        buf: Vec<u64>,
        lanes: usize,
    }

    impl<const W: usize> LimbPlanes<W> {
        /// `lanes` empty sets.
        pub fn new(lanes: usize) -> Self {
            LimbPlanes {
                buf: vec![0; W * lanes],
                lanes,
            }
        }

        /// `lanes` copies of `set`.
        pub fn filled(lanes: usize, set: WideSet<W>) -> Self {
            let mut buf = Vec::with_capacity(W * lanes);
            for &limb in set.limbs() {
                buf.resize(buf.len() + lanes, limb);
            }
            let p = LimbPlanes { buf, lanes };
            p.debug_check_layout();
            p
        }

        /// Number of lanes (sets) in the batch.
        #[inline]
        pub fn lanes(&self) -> usize {
            self.lanes
        }

        /// The whole limb-major buffer.
        #[inline]
        pub fn as_limbs(&self) -> &[u64] {
            &self.buf
        }

        /// Gathers lane `b` into a [`WideSet`] (one strided word per
        /// plane).
        #[inline]
        pub fn lane(&self, b: usize) -> WideSet<W> {
            assert!(b < self.lanes, "lane {b} out of {} lanes", self.lanes);
            let mut limbs = [0u64; W];
            for (l, limb) in limbs.iter_mut().enumerate() {
                *limb = self.buf[l * self.lanes + b];
            }
            WideSet::from_limbs(limbs)
        }

        /// Scatters `set` into lane `b`.
        #[inline]
        pub fn set_lane(&mut self, b: usize, set: WideSet<W>) {
            assert!(b < self.lanes, "lane {b} out of {} lanes", self.lanes);
            for (l, &limb) in set.limbs().iter().enumerate() {
                self.buf[l * self.lanes + b] = limb;
            }
            self.debug_check_layout();
        }

        /// Removes `p` from lane `b` — the single-word and-not a per-lane
        /// crash applies; returns whether `p` was present.
        #[inline]
        pub fn lane_remove(&mut self, b: usize, p: ProcessId) -> bool {
            assert!(b < self.lanes, "lane {b} out of {} lanes", self.lanes);
            let (l, bit) = (p.index() / 64, 1u64 << (p.index() % 64));
            if l >= W {
                return false;
            }
            let word = &mut self.buf[l * self.lanes + b];
            let present = *word & bit != 0;
            *word &= !bit;
            self.debug_check_layout();
            present
        }

        /// `self[b] ∪= other[b]` for every lane, as one buffer pass.
        pub fn union_with(&mut self, other: &Self) {
            assert_eq!(self.lanes, other.lanes, "lane counts must match");
            union_planes(&mut self.buf, &other.buf);
            self.debug_check_layout();
        }

        /// `self[b] ∩= other[b]` for every lane, as one buffer pass.
        pub fn intersect_with(&mut self, other: &Self) {
            assert_eq!(self.lanes, other.lanes, "lane counts must match");
            intersect_planes(&mut self.buf, &other.buf);
            self.debug_check_layout();
        }

        /// `self[b] \= other[b]` for every lane, as one buffer pass.
        pub fn andnot_with(&mut self, other: &Self) {
            assert_eq!(self.lanes, other.lanes, "lane counts must match");
            andnot_planes(&mut self.buf, &other.buf);
            self.debug_check_layout();
        }

        /// Total members across all lanes.
        pub fn count(&self) -> u64 {
            count_planes(&self.buf)
        }

        /// Per-lane member counts, into `out` (`out.len() == lanes`).
        pub fn lane_counts_into(&self, out: &mut [u32]) {
            lane_counts(&self.buf, self.lanes, out);
        }

        /// Layout invariant: the buffer holds exactly `W` planes of `lanes`
        /// words each. Every mutator re-establishes this before returning;
        /// a drift would silently shear the strided `lane()` gathers.
        #[inline]
        fn debug_check_layout(&self) {
            debug_assert_eq!(
                self.buf.len(),
                W * self.lanes,
                "LimbPlanes layout invariant violated: buffer is not W × lanes words"
            );
        }
    }
}

/// A dense map from sender to `M`: `Vec<Option<M>>` keyed by
/// [`ProcessId::index`].
///
/// The workspace's round-structured state — synchronous-round inboxes,
/// stage-2 info tables, Paxos promise/accept ledgers — is always keyed by
/// sender, with keys drawn from `0..n`. A dense vector turns every lookup
/// into an index operation and every iteration into a linear scan, replacing
/// the pointer-chasing `BTreeMap<ProcessId, M>` these paths used before.
///
/// Equality and hashing consider only the *present* entries, so maps that
/// differ merely in trailing capacity compare (and fingerprint) equal.
/// Iteration yields entries in ascending sender order.
///
/// # Examples
///
/// ```
/// use kset_sim::{ProcessId, SenderMap};
///
/// let mut m: SenderMap<&'static str> = SenderMap::new();
/// m.insert(ProcessId::new(2), "hello");
/// assert_eq!(m.get(ProcessId::new(2)), Some(&"hello"));
/// assert_eq!(m.len(), 1);
/// assert_eq!(m.senders().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SenderMap<M> {
    slots: Vec<Option<M>>,
    len: usize,
}

impl<M> Default for SenderMap<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> SenderMap<M> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SenderMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty map with room for senders `0..n`.
    pub fn with_capacity(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        SenderMap { slots, len: 0 }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Removes every entry, keeping the allocated slots — so a round
    /// executor can reuse one inbox across rounds instead of allocating
    /// `n` maps per round.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
        self.debug_check_density();
    }

    /// Whether no entry is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `sender` has an entry.
    pub fn contains(&self, sender: ProcessId) -> bool {
        self.slots.get(sender.index()).is_some_and(Option::is_some)
    }

    /// The entry of `sender`, if present.
    pub fn get(&self, sender: ProcessId) -> Option<&M> {
        self.slots.get(sender.index()).and_then(Option::as_ref)
    }

    /// Inserts (or replaces) the entry of `sender`, returning the previous
    /// value.
    pub fn insert(&mut self, sender: ProcessId, value: M) -> Option<M> {
        if sender.index() >= self.slots.len() {
            self.slots.resize_with(sender.index() + 1, || None);
        }
        let prev = self.slots[sender.index()].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        self.debug_check_density();
        prev
    }

    /// Inserts `value` only if `sender` has no entry yet; returns a
    /// reference to the entry.
    pub fn entry_or_insert_with(&mut self, sender: ProcessId, value: impl FnOnce() -> M) -> &M {
        if sender.index() >= self.slots.len() {
            self.slots.resize_with(sender.index() + 1, || None);
        }
        let idx = sender.index();
        if self.slots[idx].is_none() {
            self.slots[idx] = Some(value());
            self.len += 1;
        }
        self.debug_check_density();
        let Some(entry) = self.slots[idx].as_ref() else {
            // kset-lint: allow(panic-in-library): the slot was filled two lines above
            unreachable!("slot {idx} filled above")
        };
        entry
    }

    /// Removes and returns the entry of `sender`.
    pub fn remove(&mut self, sender: ProcessId) -> Option<M> {
        let prev = self.slots.get_mut(sender.index()).and_then(Option::take);
        if prev.is_some() {
            self.len -= 1;
        }
        self.debug_check_density();
        prev
    }

    /// Iterates over present `(sender, value)` entries, ascending by sender.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (ProcessId::new(i), v)))
    }

    /// Iterates over the present values, ascending by sender.
    pub fn values(&self) -> impl Iterator<Item = &M> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// The set of senders with an entry.
    pub fn senders(&self) -> ProcessSet {
        self.iter().map(|(p, _)| p).collect()
    }

    /// Density invariant: the cached `len` must equal the number of present
    /// slots. Every mutator re-establishes this before returning; a drift
    /// would silently corrupt `Eq`/`Hash` (both trust `len`) and the
    /// round-termination checks built on `len()`.
    #[inline]
    fn debug_check_density(&self) {
        debug_assert_eq!(
            self.len,
            self.slots.iter().filter(|s| s.is_some()).count(),
            "SenderMap density invariant violated: cached len disagrees with present slots"
        );
    }
}

impl<M: PartialEq> PartialEq for SenderMap<M> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<M: Eq> Eq for SenderMap<M> {}

impl<M: Hash> Hash for SenderMap<M> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash only present entries so trailing capacity is irrelevant:
        // fingerprint-comparable across differently grown maps.
        self.len.hash(state);
        for (p, v) in self.iter() {
            p.hash(state);
            v.hash(state);
        }
    }
}

impl<M> FromIterator<(ProcessId, M)> for SenderMap<M> {
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Self {
        let mut m = SenderMap::new();
        for (p, v) in iter {
            m.insert(p, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn process_id_roundtrip() {
        for i in 0..10 {
            let p = ProcessId::new(i);
            assert_eq!(p.index(), i);
            assert_eq!(p.display_id(), i + 1);
        }
    }

    #[test]
    fn process_id_display_is_one_based() {
        assert_eq!(ProcessId::new(0).to_string(), "p1");
        assert_eq!(ProcessId::new(7).to_string(), "p8");
    }

    #[test]
    fn process_id_all_enumerates_in_order() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(ids.len(), 4);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn process_id_all_empty_system() {
        assert_eq!(ProcessId::all(0).count(), 0);
    }

    #[test]
    fn process_ids_are_ordered_and_hashable() {
        let set: BTreeSet<_> = [2usize, 0, 1].into_iter().map(ProcessId::new).collect();
        let sorted: Vec<_> = set.into_iter().collect();
        assert_eq!(
            sorted,
            vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]
        );
    }

    #[test]
    fn time_ordering_and_arithmetic() {
        let t0 = Time::ZERO;
        let t5 = Time::new(5);
        assert!(t0 < t5);
        assert_eq!(t5.since(t0), 5);
        assert_eq!(t0.since(t5), 0, "since is saturating");
        assert_eq!(t5.next(), Time::new(6));
    }

    #[test]
    fn msg_id_display() {
        assert_eq!(MsgId::new(42).to_string(), "m42");
        assert_eq!(MsgId::new(42).raw(), 42);
    }

    #[test]
    fn conversions_from_usize_and_u64() {
        assert_eq!(ProcessId::from(3), ProcessId::new(3));
        assert_eq!(Time::from(9), Time::new(9));
    }

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn process_set_algebra() {
        let a: ProcessSet = [pid(0), pid(1), pid(5)].into();
        let b: ProcessSet = [pid(1), pid(5), pid(7)].into();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), [pid(1), pid(5)].into());
        assert_eq!(a.difference(b), ProcessSet::singleton(pid(0)));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
        assert_eq!(a - b, a.difference(b));
        assert!(a.intersection(b).is_subset(a));
        assert!(!a.is_disjoint(b));
        assert!(a.difference(b).is_disjoint(b));
    }

    #[test]
    fn process_set_iterates_in_ascending_order() {
        let s: ProcessSet = [pid(9), pid(0), pid(4)].into();
        let order: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(order, vec![0, 4, 9]);
        assert_eq!(s.first(), Some(pid(0)));
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn process_set_full_and_complement() {
        let full = ProcessSet::full(5);
        assert_eq!(full.len(), 5);
        let s: ProcessSet = [pid(1), pid(3)].into();
        assert_eq!(s.complement(5), [pid(0), pid(2), pid(4)].into());
        assert_eq!(
            ProcessSet::full(ProcessSet::CAPACITY).len(),
            ProcessSet::CAPACITY
        );
    }

    #[test]
    fn process_set_insert_remove_roundtrip() {
        let mut s = ProcessSet::new();
        assert!(s.insert(pid(3)));
        assert!(!s.insert(pid(3)), "second insert is a no-op");
        assert!(s.contains(pid(3)));
        assert!(s.remove(pid(3)));
        assert!(!s.remove(pid(3)));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn process_set_rejects_oversized_ids() {
        let mut s = ProcessSet::new();
        s.insert(pid(ProcessSet::CAPACITY));
    }

    #[test]
    fn process_set_display_matches_btree_convention() {
        let s: ProcessSet = [pid(0), pid(2)].into();
        assert_eq!(s.to_string(), "{p1, p3}");
        assert_eq!(format!("{s:?}"), "{p1, p3}");
    }

    #[test]
    fn capacity_is_512_and_errors_are_typed() {
        assert_eq!(ProcessSet::CAPACITY, 512);
        let mut s = ProcessSet::new();
        assert!(s.insert(pid(511)), "top id fits");
        let err = s.try_insert(pid(512)).unwrap_err();
        assert_eq!(err.requested(), 512);
        assert_eq!(err.capacity(), 512);
        assert!(err.to_string().contains("exceeds the ProcessSet capacity"));
        assert_eq!(s.len(), 1, "failed try_insert leaves the set unchanged");
        assert!(ProcessSet::try_singleton(pid(512)).is_err());
        assert_eq!(ProcessSet::try_full(512).unwrap().len(), 512);
        assert!(ProcessSet::try_full(513).is_err());
    }

    #[test]
    fn wide_ops_cross_limb_boundaries() {
        // Members straddling all limbs of the width; algebra must treat the
        // limb array as one long bit string.
        let a: ProcessSet = [pid(0), pid(63), pid(64), pid(200), pid(511)].into();
        let b: ProcessSet = [pid(63), pid(64), pid(65), pid(450)].into();
        assert_eq!(a.union(b).len(), 7);
        assert_eq!(a.intersection(b), [pid(63), pid(64)].into());
        assert_eq!(a.difference(b), [pid(0), pid(200), pid(511)].into());
        assert!(a.intersection(b).is_subset(b));
        assert!(!a.is_disjoint(b));
        let order: Vec<usize> = a.iter().map(ProcessId::index).collect();
        assert_eq!(order, vec![0, 63, 64, 200, 511]);
        assert_eq!(a.complement(512).len(), 512 - 5);
        assert_eq!(a.first(), Some(pid(0)));
    }

    #[test]
    fn widths_agree_on_shared_prefix() {
        // The same members produce observationally equal sets at every
        // width that can hold them.
        let members = [0usize, 1, 63, 64, 100, 127];
        let w2: WideSet<2> = members.iter().copied().map(pid).collect();
        let w4: WideSet<4> = members.iter().copied().map(pid).collect();
        let w8: WideSet<8> = members.iter().copied().map(pid).collect();
        assert_eq!(w2.len(), w4.len());
        assert_eq!(w4.len(), w8.len());
        assert_eq!(w2.to_string(), w8.to_string());
        assert_eq!(w2.iter().collect::<Vec<_>>(), w8.iter().collect::<Vec<_>>());
        assert_eq!(w2.bits(), w8.bits());
    }

    #[test]
    fn u128_interchange_roundtrips() {
        let bits: u128 = (1 << 0) | (1 << 64) | (1 << 127);
        let s = ProcessSet::from_bits(bits);
        assert_eq!(s.len(), 3);
        assert_eq!(s.bits(), bits);
        assert_eq!(WideSet::<2>::from_bits(bits).bits(), bits);
    }

    #[test]
    #[should_panic(expected = "does not fit in u128")]
    fn bits_rejects_wide_members() {
        let s: ProcessSet = [pid(300)].into();
        let _ = s.bits();
    }

    #[test]
    fn ord_matches_u128_numeric_order() {
        // For sets within the u128 window, Ord must agree with the numeric
        // order of the old u128 representation (BTreeSet layouts, sorted
        // partition blocks and explorer tie-breaks all depend on it).
        let patterns: [u128; 6] = [0, 1, 2, 1 << 64, (1 << 64) | 1, u128::MAX];
        for &x in &patterns {
            for &y in &patterns {
                let sx = ProcessSet::from_bits(x);
                let sy = ProcessSet::from_bits(y);
                assert_eq!(sx.cmp(&sy), x.cmp(&y), "{x:#x} vs {y:#x}");
            }
        }
        // And above the window: a member in a higher limb dominates.
        assert!(ProcessSet::singleton(pid(128)) > ProcessSet::from_bits(u128::MAX));
    }

    #[test]
    fn subsets_match_classic_u128_walk() {
        let mask: u128 = 0b1_0110_1001;
        let s = ProcessSet::from_bits(mask);
        // Reference: the classic descending sub = (sub - 1) & mask walk.
        let mut expect = Vec::new();
        let mut sub = mask;
        while sub != 0 {
            expect.push(sub);
            sub = (sub - 1) & mask;
        }
        let got: Vec<u128> = s.subsets().map(|t| t.bits()).collect();
        assert_eq!(got, expect);
        assert_eq!(got.len(), (1 << s.len()) - 1);
    }

    #[test]
    fn subsets_cross_limb_boundaries() {
        // 3 members spread over 3 limbs: 7 non-empty subsets, the full set
        // first, every subset within the mask.
        let s: ProcessSet = [pid(10), pid(70), pid(140)].into();
        let subs: Vec<ProcessSet> = s.subsets().collect();
        assert_eq!(subs.len(), 7);
        assert_eq!(subs[0], s);
        let distinct: BTreeSet<ProcessSet> = subs.iter().copied().collect();
        assert_eq!(distinct.len(), 7, "subsets are distinct");
        for sub in subs {
            assert!(!sub.is_empty());
            assert!(sub.is_subset(s));
        }
        assert_eq!(ProcessSet::new().subsets().count(), 0);
    }

    #[test]
    fn sender_map_dense_semantics() {
        let mut m: SenderMap<u32> = SenderMap::with_capacity(4);
        assert!(m.is_empty());
        assert_eq!(m.insert(pid(2), 20), None);
        assert_eq!(m.insert(pid(2), 21), Some(20));
        m.insert(pid(0), 10);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(pid(2)), Some(&21));
        assert_eq!(m.get(pid(3)), None);
        let entries: Vec<(usize, u32)> = m.iter().map(|(p, v)| (p.index(), *v)).collect();
        assert_eq!(entries, vec![(0, 10), (2, 21)]);
        assert_eq!(m.senders(), [pid(0), pid(2)].into());
        assert_eq!(m.remove(pid(0)), Some(10));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sender_map_eq_and_hash_ignore_capacity() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a: SenderMap<u32> = SenderMap::with_capacity(16);
        let mut b: SenderMap<u32> = SenderMap::new();
        a.insert(pid(1), 7);
        b.insert(pid(1), 7);
        assert_eq!(a, b);
        let hash = |m: &SenderMap<u32>| {
            let mut h = DefaultHasher::new();
            m.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn sender_map_entry_or_insert_keeps_first() {
        let mut m: SenderMap<u32> = SenderMap::new();
        assert_eq!(*m.entry_or_insert_with(pid(0), || 1), 1);
        assert_eq!(*m.entry_or_insert_with(pid(0), || 2), 1, "first value wins");
    }

    #[test]
    fn sender_map_clear_keeps_slots() {
        let mut m: SenderMap<u32> = SenderMap::with_capacity(4);
        m.insert(pid(1), 11);
        m.insert(pid(3), 33);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(pid(1)), None);
        m.insert(pid(2), 22);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(pid(2)), Some(&22));
    }

    /// Mixed pseudo-random sets for plane-kernel cross-checks.
    fn plane_fixture(lanes: usize) -> (Vec<ProcessSet>, planes::LimbPlanes<PSET_LIMBS>) {
        let sets: Vec<ProcessSet> = (0..lanes)
            .map(|b| {
                (0..512usize)
                    .filter(|&j| (b * 7 + j * 13) % 5 < 2)
                    .map(pid)
                    .collect()
            })
            .collect();
        let mut planes = planes::LimbPlanes::new(lanes);
        for (b, s) in sets.iter().enumerate() {
            planes.set_lane(b, *s);
        }
        (sets, planes)
    }

    #[test]
    fn plane_lane_roundtrip_and_remove() {
        let (sets, mut planes) = plane_fixture(5);
        for (b, s) in sets.iter().enumerate() {
            assert_eq!(planes.lane(b), *s, "lane {b} gathers back");
        }
        let victim = sets[3].first().unwrap();
        assert!(planes.lane_remove(3, victim));
        assert!(!planes.lane_remove(3, victim), "second removal is a no-op");
        assert_eq!(planes.lane(3), {
            let mut s = sets[3];
            s.remove(victim);
            s
        });
        assert_eq!(planes.lane(2), sets[2], "other lanes untouched");
        assert!(!planes.lane_remove(0, pid(PSET_LIMBS * 64 + 1)));
    }

    #[test]
    fn plane_algebra_matches_per_set_ops() {
        // Batch-wide kernels must agree lane-for-lane with the scalar
        // WideSet algebra — 5 lanes exercises the non-multiple-of-UNROLL
        // remainder path (5 × 8 = 40 words).
        let (xs, px) = plane_fixture(5);
        let (ys, py) = {
            let sets: Vec<ProcessSet> = (0..5)
                .map(|b| {
                    (0..512usize)
                        .filter(|&j| (b * 11 + j * 3) % 7 < 3)
                        .map(pid)
                        .collect()
                })
                .collect();
            let mut p = planes::LimbPlanes::new(5);
            for (b, s) in sets.iter().enumerate() {
                p.set_lane(b, *s);
            }
            (sets, p)
        };
        let mut u = px.clone();
        u.union_with(&py);
        let mut i = px.clone();
        i.intersect_with(&py);
        let mut d = px.clone();
        d.andnot_with(&py);
        let mut counts = [0u32; 5];
        px.lane_counts_into(&mut counts);
        let mut total = 0u64;
        for b in 0..5 {
            assert_eq!(u.lane(b), xs[b].union(ys[b]), "union lane {b}");
            assert_eq!(i.lane(b), xs[b].intersection(ys[b]), "intersect lane {b}");
            assert_eq!(d.lane(b), xs[b].difference(ys[b]), "andnot lane {b}");
            assert_eq!(counts[b] as usize, xs[b].len(), "count lane {b}");
            total += xs[b].len() as u64;
        }
        assert_eq!(px.count(), total);
    }

    #[test]
    fn plane_filled_replicates_one_set() {
        let s: ProcessSet = [pid(0), pid(70), pid(400)].into();
        let p = planes::LimbPlanes::<PSET_LIMBS>::filled(3, s);
        assert_eq!(p.lanes(), 3);
        for b in 0..3 {
            assert_eq!(p.lane(b), s);
        }
        assert_eq!(p.count(), 9);
        assert_eq!(p.as_limbs().len(), PSET_LIMBS * 3);
    }

    #[test]
    fn raw_kernels_handle_unaligned_tails() {
        // 11 words: one full unroll block plus a 3-word remainder.
        let a: Vec<u64> = (0..11u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let b: Vec<u64> = (0..11u64).map(|i| !i.wrapping_mul(0x85EB_CA6B)).collect();
        let mut u = a.clone();
        planes::union_planes(&mut u, &b);
        let mut i = a.clone();
        planes::intersect_planes(&mut i, &b);
        let mut d = a.clone();
        planes::andnot_planes(&mut d, &b);
        for k in 0..11 {
            assert_eq!(u[k], a[k] | b[k]);
            assert_eq!(i[k], a[k] & b[k]);
            assert_eq!(d[k], a[k] & !b[k]);
        }
        let expect: u64 = a.iter().map(|w| u64::from(w.count_ones())).sum();
        assert_eq!(planes::count_planes(&a), expect);
    }
}
