//! Core identifier newtypes: process identifiers, message identifiers, and
//! the global logical clock.
//!
//! The paper (Section II) considers a system `Π = {p1, …, pn}` of `n`
//! processes with unique ids `{1, …, n}`, and defines *time* as the index of
//! a step in a run: the `i`-th step of a run occurs at time `i`. Processes do
//! **not** have access to time; it exists only in the meta-level analysis
//! (failure patterns, failure-detector histories).
//!
//! Internally we use 0-based indices for processes; [`ProcessId::display_id`]
//! recovers the paper's 1-based numbering.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a process in the system `Π = {p1, …, pn}`.
///
/// Wraps a 0-based index. The `Display` impl prints the paper-style 1-based
/// name (`p1`, `p2`, …).
///
/// # Examples
///
/// ```
/// use kset_sim::ProcessId;
///
/// let p = ProcessId::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.display_id(), 1);
/// assert_eq!(p.to_string(), "p1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process identifier from a 0-based index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the 0-based index of this process.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns the paper-style 1-based identifier.
    pub const fn display_id(self) -> usize {
        self.0 + 1
    }

    /// Iterates over all process ids of a system of size `n`, in id order.
    ///
    /// # Examples
    ///
    /// ```
    /// use kset_sim::ProcessId;
    ///
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + ExactSizeIterator {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.display_id())
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

/// Globally unique identifier of a message instance.
///
/// Every send produces a fresh `MsgId`; identifiers are assigned in send
/// order by the simulation engine and are therefore deterministic for a
/// deterministic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId(u64);

impl MsgId {
    /// Creates a message id from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        MsgId(raw)
    }

    /// Returns the raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Global logical time: the index of a step in a run (Section II-C).
///
/// `Time(0)` is the instant of the initial configuration; the first step of
/// a run occurs at `Time(1)`.
///
/// # Examples
///
/// ```
/// use kset_sim::Time;
///
/// let t = Time::ZERO;
/// assert_eq!(t.next(), Time::new(1));
/// assert!(t < t.next());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The instant of the initial configuration.
    pub const ZERO: Time = Time(0);

    /// Creates a time from a raw step index.
    pub const fn new(raw: u64) -> Self {
        Time(raw)
    }

    /// Returns the raw step index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The immediately following instant.
    #[must_use]
    pub const fn next(self) -> Time {
        Time(self.0 + 1)
    }

    /// Saturating difference `self - earlier` in steps.
    #[must_use]
    pub const fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(raw: u64) -> Self {
        Time(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn process_id_roundtrip() {
        for i in 0..10 {
            let p = ProcessId::new(i);
            assert_eq!(p.index(), i);
            assert_eq!(p.display_id(), i + 1);
        }
    }

    #[test]
    fn process_id_display_is_one_based() {
        assert_eq!(ProcessId::new(0).to_string(), "p1");
        assert_eq!(ProcessId::new(7).to_string(), "p8");
    }

    #[test]
    fn process_id_all_enumerates_in_order() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(ids.len(), 4);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn process_id_all_empty_system() {
        assert_eq!(ProcessId::all(0).count(), 0);
    }

    #[test]
    fn process_ids_are_ordered_and_hashable() {
        let set: BTreeSet<_> = [2usize, 0, 1].into_iter().map(ProcessId::new).collect();
        let sorted: Vec<_> = set.into_iter().collect();
        assert_eq!(sorted, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    }

    #[test]
    fn time_ordering_and_arithmetic() {
        let t0 = Time::ZERO;
        let t5 = Time::new(5);
        assert!(t0 < t5);
        assert_eq!(t5.since(t0), 5);
        assert_eq!(t0.since(t5), 0, "since is saturating");
        assert_eq!(t5.next(), Time::new(6));
    }

    #[test]
    fn msg_id_display() {
        assert_eq!(MsgId::new(42).to_string(), "m42");
        assert_eq!(MsgId::new(42).raw(), 42);
    }

    #[test]
    fn conversions_from_usize_and_u64() {
        assert_eq!(ProcessId::from(3), ProcessId::new(3));
        assert_eq!(Time::from(9), Time::new(9));
    }
}
