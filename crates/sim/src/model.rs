//! System-model parameters: the Dolev–Dwork–Stockmeyer dimensions plus the
//! paper's sixth dimension (failure detectors).
//!
//! The paper (Section II) works in the computing model of Dolev, Dwork and
//! Stockmeyer, "On the minimal synchronism needed for distributed
//! consensus" (JACM 1987), where 32 models arise by choosing each of five
//! parameters either *favourable* (F) or *unfavourable* (U) for the
//! algorithm, and adds a sixth dimension:
//!
//! 1. **Processes** — synchronous (F) or asynchronous (U);
//! 2. **Communication** — bounded delay (F) or unbounded (U);
//! 3. **Message order** — messages received in send order (F) or not (U);
//! 4. **Transmission mechanism** — broadcast in an atomic step (F) or
//!    point-to-point only (U);
//! 5. **Receive/Send atomicity** — receive and send in the same atomic step
//!    (F) or separate steps (U);
//! 6. **Failure detectors** — processes can query one each step (F) or not
//!    (U).
//!
//! [`ModelParams`] is the descriptive record of a model point; the
//! quantitative synchrony bounds Φ (process speed ratio) and Δ (delivery
//! bound) live in [`SynchronyBounds`] and are enforced/checked by the
//! admissibility machinery ([`crate::admissible`]).

use std::fmt;

/// One DDS dimension: favourable for the algorithm, or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Setting {
    /// The favourable (algorithm-friendly) choice.
    Favourable,
    /// The unfavourable (adversary-friendly) choice.
    Unfavourable,
}

impl Setting {
    /// Whether this is the favourable choice.
    pub fn is_favourable(self) -> bool {
        matches!(self, Setting::Favourable)
    }
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Setting::Favourable => write!(f, "F"),
            Setting::Unfavourable => write!(f, "U"),
        }
    }
}

/// A point in the (extended) DDS model space.
///
/// # Examples
///
/// ```
/// use kset_sim::ModelParams;
///
/// let masync = ModelParams::masync();
/// assert!(!masync.processes.is_favourable());
/// assert_eq!(masync.to_string(), "⟨proc:U comm:U order:U bcast:U rs:U fd:U⟩");
///
/// let thm2 = ModelParams::theorem2();
/// assert!(thm2.processes.is_favourable());
/// assert!(!thm2.communication.is_favourable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelParams {
    /// Dimension 1: process synchrony.
    pub processes: Setting,
    /// Dimension 2: communication synchrony (bounded delivery delay).
    pub communication: Setting,
    /// Dimension 3: ordered message delivery.
    pub message_order: Setting,
    /// Dimension 4: atomic broadcast transmission.
    pub broadcast: Setting,
    /// Dimension 5: receive and send in the same atomic step.
    pub receive_send_atomic: Setting,
    /// Dimension 6 (the paper's extension): failure-detector access.
    pub failure_detector: Setting,
}

impl ModelParams {
    /// The fully asynchronous FLP model `M_ASYNC`: everything unfavourable.
    pub fn masync() -> Self {
        ModelParams {
            processes: Setting::Unfavourable,
            communication: Setting::Unfavourable,
            message_order: Setting::Unfavourable,
            broadcast: Setting::Unfavourable,
            receive_send_atomic: Setting::Unfavourable,
            failure_detector: Setting::Unfavourable,
        }
    }

    /// `M_ASYNC` augmented with a failure detector — the model
    /// `⟨M_ASYNC, D⟩` of Sections II-C and VII.
    pub fn masync_with_fd() -> Self {
        ModelParams {
            failure_detector: Setting::Favourable,
            ..Self::masync()
        }
    }

    /// The model of Theorem 2: synchronous processes, asynchronous
    /// communication, atomic broadcast, receive and send in the same atomic
    /// step, no failure detector.
    pub fn theorem2() -> Self {
        ModelParams {
            processes: Setting::Favourable,
            communication: Setting::Unfavourable,
            message_order: Setting::Unfavourable,
            broadcast: Setting::Favourable,
            receive_send_atomic: Setting::Favourable,
            failure_detector: Setting::Unfavourable,
        }
    }

    /// Everything favourable except failure detectors: the strongest
    /// DDS point, where lock-step synchronous-round algorithms (e.g.
    /// FloodMin) run.
    pub fn synchronous() -> Self {
        ModelParams {
            processes: Setting::Favourable,
            communication: Setting::Favourable,
            message_order: Setting::Favourable,
            broadcast: Setting::Favourable,
            receive_send_atomic: Setting::Favourable,
            failure_detector: Setting::Unfavourable,
        }
    }

    /// Whether every dimension of `self` is at least as favourable as in
    /// `weaker`. Corollary 5 of the paper uses exactly this ordering:
    /// impossibility under stronger (more favourable) assumptions implies
    /// impossibility under weaker ones.
    pub fn at_least_as_favourable_as(&self, weaker: &ModelParams) -> bool {
        let ge = |a: Setting, b: Setting| a.is_favourable() || !b.is_favourable();
        ge(self.processes, weaker.processes)
            && ge(self.communication, weaker.communication)
            && ge(self.message_order, weaker.message_order)
            && ge(self.broadcast, weaker.broadcast)
            && ge(self.receive_send_atomic, weaker.receive_send_atomic)
            && ge(self.failure_detector, weaker.failure_detector)
    }
}

impl fmt::Display for ModelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨proc:{} comm:{} order:{} bcast:{} rs:{} fd:{}⟩",
            self.processes,
            self.communication,
            self.message_order,
            self.broadcast,
            self.receive_send_atomic,
            self.failure_detector,
        )
    }
}

/// Quantitative synchrony bounds for the favourable settings of dimensions
/// 1 and 2.
///
/// * `phi` — process synchrony bound Φ: in any interval in which some alive
///   process takes `Φ + 1` steps, every alive process takes at least one
///   step. `None` means asynchronous processes.
/// * `delta` — communication bound Δ: every message sent to an alive,
///   correct process is received at most Δ steps after it was sent. `None`
///   means asynchronous communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynchronyBounds {
    /// Process speed ratio bound Φ (`None` = unbounded).
    pub phi: Option<u64>,
    /// Message delay bound Δ in steps (`None` = unbounded).
    pub delta: Option<u64>,
}

impl SynchronyBounds {
    /// Fully asynchronous: no bounds at all.
    pub fn asynchronous() -> Self {
        SynchronyBounds {
            phi: None,
            delta: None,
        }
    }

    /// Synchronous processes (Φ = `phi`), asynchronous communication — the
    /// quantitative side of the Theorem 2 model.
    pub fn lockstep_processes(phi: u64) -> Self {
        SynchronyBounds {
            phi: Some(phi),
            delta: None,
        }
    }

    /// Both bounds present.
    pub fn bounded(phi: u64, delta: u64) -> Self {
        SynchronyBounds {
            phi: Some(phi),
            delta: Some(delta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masync_is_all_unfavourable() {
        let m = ModelParams::masync();
        assert!(!m.processes.is_favourable());
        assert!(!m.communication.is_favourable());
        assert!(!m.message_order.is_favourable());
        assert!(!m.broadcast.is_favourable());
        assert!(!m.receive_send_atomic.is_favourable());
        assert!(!m.failure_detector.is_favourable());
    }

    #[test]
    fn masync_with_fd_only_flips_dimension_six() {
        let m = ModelParams::masync_with_fd();
        assert!(m.failure_detector.is_favourable());
        assert!(!m.processes.is_favourable());
    }

    #[test]
    fn theorem2_model_matches_paper() {
        let m = ModelParams::theorem2();
        assert!(m.processes.is_favourable(), "processes are synchronous");
        assert!(
            !m.communication.is_favourable(),
            "communication is asynchronous"
        );
        assert!(m.broadcast.is_favourable(), "broadcast in an atomic step");
        assert!(m.receive_send_atomic.is_favourable(), "receive+send atomic");
    }

    #[test]
    fn favourability_order_is_reflexive_and_covers_corollary5() {
        let thm2 = ModelParams::theorem2();
        let masync = ModelParams::masync();
        assert!(thm2.at_least_as_favourable_as(&thm2));
        // Theorem 2's model is strictly more favourable than M_ASYNC, so the
        // impossibility carries over to M_ASYNC (Corollary 5).
        assert!(thm2.at_least_as_favourable_as(&masync));
        assert!(!masync.at_least_as_favourable_as(&thm2));
    }

    #[test]
    fn synchronous_dominates_everything_without_fd() {
        let sync = ModelParams::synchronous();
        assert!(sync.at_least_as_favourable_as(&ModelParams::theorem2()));
        assert!(sync.at_least_as_favourable_as(&ModelParams::masync()));
        assert!(!sync.at_least_as_favourable_as(&ModelParams::masync_with_fd()));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            ModelParams::theorem2().to_string(),
            "⟨proc:F comm:U order:U bcast:F rs:F fd:U⟩"
        );
    }

    #[test]
    fn synchrony_bounds_constructors() {
        assert_eq!(
            SynchronyBounds::asynchronous(),
            SynchronyBounds {
                phi: None,
                delta: None
            }
        );
        assert_eq!(SynchronyBounds::lockstep_processes(1).phi, Some(1));
        assert_eq!(SynchronyBounds::bounded(2, 5).delta, Some(5));
    }
}
