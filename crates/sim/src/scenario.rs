//! Declarative scenarios: one description, three substrates.
//!
//! The workspace runs the paper's model through three substrates — the
//! step-level [`Simulation`], the round-level lock-step executor of
//! `kset-core`, and the discrete-event engine
//! ([`DesEngine`]) — unified behind the
//! [`Engine`](crate::Engine) trait. A
//! [`Scenario`] is the declarative layer above them: it names a model point
//! (system size `n`, failure budget `f`, agreement degree `k`), the
//! proposal values, a *round-oriented crash plan*, a schedule family and a
//! failure-detector choice, and **compiles** to any substrate:
//!
//! * [`Scenario::to_sim`] builds a [`SimEngine`] — the crash description
//!   becomes a [`CrashPlan`] whose final-step send omission
//!   ([`Omission::KeepOnlyTo`]) reproduces the round-level "mid-round
//!   partial delivery", and the schedule family becomes a concrete
//!   scheduler ([`ScenarioScheduler`]).
//! * `kset-core`'s scenario adapters compile the *same* value to a
//!   `LockStep` round executor (each [`ScenarioCrash`] becomes a
//!   `RoundCrash` verbatim; initially-dead processes become round-1 crashes
//!   with no receivers).
//! * [`Scenario::to_des`] builds a [`DesEngine`]:
//!   the [`ScheduleFamily::Timed`] family compiles natively (latency
//!   draws, GST, virtual-time crash strikes), and every *other* family
//!   takes the unit→time embedding, replaying the exact `to_sim` step
//!   sequence under the event-driven clock.
//!
//! Because both projections derive from one description, the two substrates
//! can be *differentially tested*: under the synchronous
//! [`ScheduleFamily::LockStepRounds`] family the compiled simulation is
//! step-for-step equivalent to the round executor, and the harness in
//! `kset-core::scenario::differential` asserts it. Under an asynchronous
//! family the equivalence intentionally breaks — that divergence is the
//! paper's border made executable.
//!
//! The algorithm is *not* part of the scenario value: a scenario compiles
//! for any [`ScenarioProcess`] (step-level) or `ScenarioRounds`
//! (round-level) implementation, so the same `(n, f, k)` point can be run
//! under FloodMin, the two-stage protocol, or any future algorithm.

use std::fmt;

use crate::des::{DesEngine, Latency, VirtualTime};
use crate::engine::{SimEngine, Simulation};
use crate::failure::{CrashPlan, Omission};
use crate::ids::{CapacityError, ProcessId, ProcessSet};
use crate::oracle::NoOracle;
use crate::process::Process;
use crate::sched::partition::{PartitionScheduler, ReleasePolicy};
use crate::sched::random::SeededRandom;
use crate::sched::round_robin::RoundRobin;
use crate::sched::{Choice, Scheduler, SimView};
use crate::sweep::{cell_seed, GridCell};

/// One crash in a scenario, described in *round* terms: in round `round`
/// (1-based), `pid` delivers its round message only to `receivers` and then
/// crashes.
///
/// The two substrates realize this description differently but
/// equivalently:
///
/// * round-level — a `RoundCrash` verbatim (mid-round partial delivery);
/// * step-level — [`CrashPlan::with_crash_after`]`(pid, round,`
///   [`Omission::KeepOnlyTo`]`(receivers))`: under the lock-step schedule
///   family a process's `round`-th local step is exactly the step that
///   broadcasts its round-`round` message, so the final-step send omission
///   drops precisely the messages the round executor never delivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioCrash {
    /// The crashing process.
    pub pid: ProcessId,
    /// The round in which the crash strikes (1-based).
    pub round: usize,
    /// The receivers that still get the final round message.
    pub receivers: ProcessSet,
}

/// The schedule family a scenario runs under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleFamily {
    /// The synchronous projection: fair round-robin with eager delivery.
    /// This is the family under which the step-level compilation is
    /// equivalent to the lock-step round executor.
    LockStepRounds,
    /// Reproducible asynchrony: seeded random process choice and per-source
    /// random delivery. Differential equivalence is *not* expected here —
    /// the report flags divergences instead.
    Async {
        /// RNG seed (typically the grid cell's [`cell_seed`]).
        seed: u64,
        /// Per-source delivery probability in percent (0–100).
        deliver_percent: u8,
        /// Starvation bound: every alive process steps at least once every
        /// this many scheduler picks.
        fairness_window: u64,
    },
    /// The partitioning adversary: cross-block messages are delayed until
    /// every process decided.
    Partitioned {
        /// The pairwise-disjoint partition blocks.
        blocks: Vec<ProcessSet>,
    },
    /// The timed family: the discrete-event substrate with real delivery
    /// times. Messages take `max(send, gst) + draw` virtual-time ticks,
    /// with `draw` a seeded per-link draw from the latency model; before
    /// the GST the delay-bounded adversary parks every message.
    ///
    /// This family compiles only with [`Scenario::to_des`] —
    /// [`Scenario::to_sim`] rejects it with a typed
    /// [`ScenarioError::BadSchedule`], since no unit scheduler expresses
    /// arrival-driven execution. Crash entries are reinterpreted: `round`
    /// is the *virtual time* of an adversary strike (crash-stop, so
    /// `receivers` must be empty — earlier sends still arrive on their
    /// own schedule).
    Timed {
        /// Per-link delivery-delay model (must satisfy `1 ≤ lo ≤ hi`).
        latency: Latency,
        /// Global stabilization time; `0` means synchronous-bounded from
        /// the start.
        gst: u64,
        /// Seed of the per-link latency draws.
        seed: u64,
    },
}

/// Which failure detector the scenario equips processes with.
///
/// The simulator stays agnostic about detector classes; this enum only
/// *names* the choice. `kset-fd` maps each variant to a concrete oracle
/// (`kset_fd::select`), and [`Scenario::to_sim`] serves the
/// detector-free case directly (all current differential algorithms have
/// `Fd = ()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorChoice {
    /// No failure detector (dimension 6 unfavourable).
    None,
    /// The perfect detector P (suspect exactly the crashed).
    Perfect,
    /// The pair (Σk, Ωk) with eventual stabilization time `tgst`.
    SigmaOmega {
        /// The detector degree `k`.
        k: usize,
        /// Global stabilization time of the Ωk component.
        tgst: u64,
    },
    /// The loneliness detector L.
    Loneliness,
}

/// Errors raised when validating or compiling a [`Scenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The system size exceeds the bitset capacity.
    Capacity(CapacityError),
    /// `inputs.len()` does not match `n`.
    InputCount {
        /// System size the scenario declares.
        n: usize,
        /// Number of proposal values provided.
        inputs: usize,
    },
    /// The failure budget or agreement degree is infeasible (`f ≥ n`,
    /// `k < 1`, or `k > n`).
    Infeasible {
        /// System size.
        n: usize,
        /// Failure budget.
        f: usize,
        /// Agreement degree.
        k: usize,
    },
    /// A process is named by two crash entries (or is both initially dead
    /// and crash-scheduled).
    DuplicateCrash(ProcessId),
    /// A crash round lies outside `1..=rounds`.
    RoundOutOfRange {
        /// The offending crash round.
        round: usize,
        /// The scenario's scheduled round count.
        rounds: usize,
    },
    /// More processes fail than the budget `f` allows.
    TooManyFaulty {
        /// Processes that fail under the crash description.
        faulty: usize,
        /// The declared budget.
        f: usize,
    },
    /// A crash (initial or scheduled) names a process outside `0..n` — it
    /// would silently affect nothing on either substrate.
    CrashOutOfRange {
        /// The named process.
        pid: ProcessId,
        /// System size.
        n: usize,
    },
    /// The schedule family carries parameters its scheduler rejects
    /// (delivery probability over 100%, a zero fairness window, or
    /// overlapping partition blocks).
    BadSchedule {
        /// What the scheduler would reject.
        reason: &'static str,
    },
    /// The detector choice's degree is outside `1..=n`.
    DetectorDegree {
        /// The requested degree.
        k: usize,
        /// System size.
        n: usize,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Capacity(e) => write!(f, "system size {e}"),
            ScenarioError::InputCount { n, inputs } => {
                write!(f, "scenario declares n = {n} but provides {inputs} inputs")
            }
            ScenarioError::Infeasible { n, f: ff, k } => {
                write!(f, "infeasible model point: n = {n}, f = {ff}, k = {k}")
            }
            ScenarioError::DuplicateCrash(p) => write!(f, "process {p} crashes twice"),
            ScenarioError::RoundOutOfRange { round, rounds } => {
                write!(f, "crash round {round} outside 1..={rounds}")
            }
            ScenarioError::TooManyFaulty { faulty, f: ff } => {
                write!(f, "{faulty} processes fail but the budget is f = {ff}")
            }
            ScenarioError::CrashOutOfRange { pid, n } => {
                write!(f, "crash names {pid} but the system has n = {n} processes")
            }
            ScenarioError::BadSchedule { reason } => {
                write!(f, "schedule family rejected: {reason}")
            }
            ScenarioError::DetectorDegree { k, n } => {
                write!(f, "detector degree k = {k} outside 1..={n}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<CapacityError> for ScenarioError {
    fn from(e: CapacityError) -> Self {
        ScenarioError::Capacity(e)
    }
}

/// A step-level algorithm that can be instantiated from a [`Scenario`].
///
/// The trait decouples the scenario value (which lives in this crate) from
/// the algorithms (which live in `kset-core`): an implementation maps the
/// scenario's proposal values and model point to the algorithm's concrete
/// input type — e.g. the two-stage protocol derives its waiting threshold
/// `L = n − f` from the scenario, and round-based algorithms wrap
/// themselves in `kset-core`'s `RoundAdapter`.
pub trait ScenarioProcess: Process<Fd = ()> {
    /// Builds the per-process inputs of this algorithm for `scenario`.
    ///
    /// Must return exactly `scenario.n` inputs; [`Scenario::to_sim`]
    /// validates the scenario before calling this.
    fn scenario_inputs(scenario: &Scenario) -> Vec<Self::Input>;
}

/// A declarative scenario: model point, proposals, crash description,
/// schedule family, detector choice, and budgets.
///
/// Construct with [`Scenario::favourable`] (lock-step schedule, no crashes)
/// or [`Scenario::from_cell`] (seed-derived crash layout for sweep grids),
/// then refine with the builder methods.
///
/// # Examples
///
/// ```
/// use kset_sim::scenario::{Scenario, ScenarioCrash, ScheduleFamily};
/// use kset_sim::{ProcessId, ProcessSet};
///
/// let sc = Scenario::favourable(4, 1, 1).with_crash(ScenarioCrash {
///     pid: ProcessId::new(0),
///     round: 1,
///     receivers: [ProcessId::new(1)].into(),
/// });
/// assert!(sc.validate().is_ok());
/// assert_eq!(sc.rounds, 2); // ⌊f/k⌋ + 1
/// assert_eq!(sc.schedule, ScheduleFamily::LockStepRounds);
/// let plan = sc.crash_plan();
/// assert_eq!(plan.num_faulty(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// System size `n`.
    pub n: usize,
    /// Failure budget `f` (the crash description may use fewer).
    pub f: usize,
    /// Agreement degree `k` (k-set agreement).
    pub k: usize,
    /// Per-process proposal values.
    pub inputs: Vec<u64>,
    /// Scheduled synchronous rounds (defaults to `⌊f/k⌋ + 1`, the FloodMin
    /// round count for the model point).
    pub rounds: usize,
    /// Processes dead from the start.
    pub initially_dead: ProcessSet,
    /// Mid-run crashes in round terms.
    pub crashes: Vec<ScenarioCrash>,
    /// The schedule family.
    pub schedule: ScheduleFamily,
    /// The failure-detector choice.
    pub detector: DetectorChoice,
    /// Step budget for the compiled step-level engine.
    pub max_units: u64,
}

impl Scenario {
    /// A favourable-side scenario at `(n, f, k)`: distinct proposals
    /// `0..n`, `⌊f/k⌋ + 1` rounds, the lock-step schedule family, no
    /// detector, and no crashes yet.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (the round count `⌊f/k⌋ + 1` is undefined).
    pub fn favourable(n: usize, f: usize, k: usize) -> Self {
        assert!(k >= 1, "k-set agreement needs k ≥ 1");
        let rounds = f / k + 1;
        Scenario {
            n,
            f,
            k,
            inputs: (0..n as u64).collect(),
            rounds,
            initially_dead: ProcessSet::new(),
            crashes: Vec::new(),
            schedule: ScheduleFamily::LockStepRounds,
            detector: DetectorChoice::None,
            max_units: Self::default_max_units(n, rounds),
        }
    }

    /// Maps a sweep [`GridCell`] to a concrete scenario: the cell's
    /// deterministic seed fixes a crash layout (up to `f` crashes on
    /// distinct processes, spread over the rounds, each reaching a
    /// seed-derived prefix of receivers), so "cell 17 of grid 42" is the
    /// same scenario on every machine — the contract [`cell_seed`]
    /// established for bare `(n, f, k)` tuples now carries whole scenarios.
    pub fn from_cell(cell: &GridCell) -> Self {
        let mut sc = Scenario::favourable(cell.n, cell.f, cell.k);
        let base = (cell.seed as usize) % cell.n;
        for j in 0..cell.f {
            let h = cell_seed(cell.seed, j);
            let receivers: ProcessSet = ProcessId::all((h as usize) % (cell.n + 1)).collect();
            sc.crashes.push(ScenarioCrash {
                pid: ProcessId::new((base + j) % cell.n),
                round: 1 + j % sc.rounds,
                receivers,
            });
        }
        sc
    }

    fn default_max_units(n: usize, rounds: usize) -> u64 {
        // Lock-step needs n·(rounds + 1) steps; async families re-pick
        // processes randomly, so leave generous headroom.
        (n as u64) * (rounds as u64 + 2) * 8 + 64
    }

    /// Replaces the proposal values. Returns `self` for chaining.
    #[must_use]
    pub fn with_inputs(mut self, inputs: Vec<u64>) -> Self {
        self.inputs = inputs;
        self
    }

    /// Adds a round-crash. Returns `self` for chaining.
    #[must_use]
    pub fn with_crash(mut self, crash: ScenarioCrash) -> Self {
        self.crashes.push(crash);
        self
    }

    /// Marks a process dead from the start. Returns `self` for chaining.
    #[must_use]
    pub fn with_initially_dead(mut self, p: ProcessId) -> Self {
        self.initially_dead.insert(p);
        self
    }

    /// Sets the schedule family. Returns `self` for chaining.
    #[must_use]
    pub fn with_schedule(mut self, schedule: ScheduleFamily) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the detector choice. Returns `self` for chaining.
    #[must_use]
    pub fn with_detector(mut self, detector: DetectorChoice) -> Self {
        self.detector = detector;
        self
    }

    /// Overrides the scheduled round count (and rescales the step budget).
    /// Returns `self` for chaining.
    #[must_use]
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self.max_units = Self::default_max_units(self.n, rounds);
        self
    }

    /// Overrides the step budget of the compiled engine. Returns `self`
    /// for chaining.
    #[must_use]
    pub fn with_max_units(mut self, max_units: u64) -> Self {
        self.max_units = max_units;
        self
    }

    /// Whether this scenario runs under the synchronous lock-step family —
    /// the precondition for step-level/round-level equivalence.
    pub fn is_lock_step(&self) -> bool {
        self.schedule == ScheduleFamily::LockStepRounds
    }

    /// The set of processes that fail under this scenario's crash
    /// description (initially dead or round-crashed).
    pub fn faulty(&self) -> ProcessSet {
        let mut f = self.initially_dead;
        f.extend(self.crashes.iter().map(|c| c.pid));
        f
    }

    /// Checks the scenario's internal consistency.
    ///
    /// # Errors
    ///
    /// See [`ScenarioError`] for each rejected shape.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.n > ProcessSet::CAPACITY {
            return Err(CapacityError::new(self.n, ProcessSet::CAPACITY).into());
        }
        if self.f >= self.n || self.k < 1 || self.k > self.n {
            return Err(ScenarioError::Infeasible {
                n: self.n,
                f: self.f,
                k: self.k,
            });
        }
        if self.inputs.len() != self.n {
            return Err(ScenarioError::InputCount {
                n: self.n,
                inputs: self.inputs.len(),
            });
        }
        let mut seen = ProcessSet::new();
        for pid in self
            .initially_dead
            .iter()
            .chain(self.crashes.iter().map(|c| c.pid))
        {
            if pid.index() >= self.n {
                return Err(ScenarioError::CrashOutOfRange { pid, n: self.n });
            }
            if !seen.insert(pid) {
                return Err(ScenarioError::DuplicateCrash(pid));
            }
        }
        let timed = matches!(self.schedule, ScheduleFamily::Timed { .. });
        for c in &self.crashes {
            // Under the timed family `round` is a virtual time, not an
            // index into the scheduled rounds — only `≥ 1` applies.
            if c.round < 1 || (!timed && c.round > self.rounds) {
                return Err(ScenarioError::RoundOutOfRange {
                    round: c.round,
                    rounds: self.rounds,
                });
            }
            if timed && !c.receivers.is_empty() {
                return Err(ScenarioError::BadSchedule {
                    reason: "timed crashes are crash-stop and cannot name receivers",
                });
            }
        }
        if seen.len() > self.f {
            return Err(ScenarioError::TooManyFaulty {
                faulty: seen.len(),
                f: self.f,
            });
        }
        match &self.schedule {
            ScheduleFamily::LockStepRounds => {}
            ScheduleFamily::Async {
                deliver_percent,
                fairness_window,
                ..
            } => {
                if *deliver_percent > 100 {
                    return Err(ScenarioError::BadSchedule {
                        reason: "delivery probability over 100%",
                    });
                }
                if *fairness_window == 0 {
                    return Err(ScenarioError::BadSchedule {
                        reason: "fairness window must be positive",
                    });
                }
            }
            ScheduleFamily::Partitioned { blocks } => {
                let mut members = ProcessSet::new();
                for block in blocks {
                    for p in block {
                        if p.index() >= self.n {
                            return Err(ScenarioError::BadSchedule {
                                reason: "partition block names a process outside the system",
                            });
                        }
                        if !members.insert(p) {
                            return Err(ScenarioError::BadSchedule {
                                reason: "partition blocks must be pairwise disjoint",
                            });
                        }
                    }
                }
            }
            ScheduleFamily::Timed { latency, .. } => {
                if !latency.is_well_formed() {
                    return Err(ScenarioError::BadSchedule {
                        reason: "latency model must satisfy 1 ≤ lo ≤ hi",
                    });
                }
            }
        }
        match self.detector {
            DetectorChoice::SigmaOmega { k, .. } if k < 1 || k > self.n => {
                Err(ScenarioError::DetectorDegree { k, n: self.n })
            }
            _ => Ok(()),
        }
    }

    /// The step-level projection of the crash description: each
    /// [`ScenarioCrash`] becomes a crash after `round` local steps with
    /// [`Omission::KeepOnlyTo`]`(receivers)` — under the lock-step family a
    /// process's `round`-th step broadcasts its round-`round` message, so
    /// this reproduces the round executor's mid-round partial delivery.
    pub fn crash_plan(&self) -> CrashPlan {
        let mut plan = CrashPlan::initially_dead(self.initially_dead);
        for c in &self.crashes {
            plan = plan.with_crash_after(c.pid, c.round as u64, Omission::KeepOnlyTo(c.receivers));
        }
        plan
    }

    /// Builds the unit scheduler of this scenario's schedule family.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::BadSchedule`] for [`ScheduleFamily::Timed`] — the
    /// timed family is arrival-driven, no unit scheduler expresses it;
    /// compile with [`Scenario::to_des`] instead.
    pub fn scheduler(&self) -> Result<ScenarioScheduler, ScenarioError> {
        match &self.schedule {
            ScheduleFamily::LockStepRounds => Ok(ScenarioScheduler::LockStep(RoundRobin::new())),
            ScheduleFamily::Async {
                seed,
                deliver_percent,
                fairness_window,
            } => Ok(ScenarioScheduler::Async(
                SeededRandom::new(*seed)
                    .with_deliver_percent(*deliver_percent)
                    .with_fairness_window(*fairness_window),
            )),
            ScheduleFamily::Partitioned { blocks } => Ok(ScenarioScheduler::Partitioned(
                PartitionScheduler::new(blocks.clone(), ReleasePolicy::AfterAllDecided),
            )),
            ScheduleFamily::Timed { .. } => Err(ScenarioError::BadSchedule {
                reason: "the timed family has no unit scheduler; compile with to_des",
            }),
        }
    }

    /// Compiles the scenario to a bare step-level [`Simulation`] (no
    /// scheduler attached) — the form the exhaustive explorer consumes; see
    /// [`crate::explore::explore_scenario`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] of [`Scenario::validate`].
    pub fn to_simulation<P: ScenarioProcess>(
        &self,
    ) -> Result<Simulation<P, NoOracle>, ScenarioError> {
        self.validate()?;
        Ok(Simulation::try_new(
            P::scenario_inputs(self),
            self.crash_plan(),
        )?)
    }

    /// Compiles the scenario to the step-level substrate: a [`SimEngine`]
    /// pairing the simulation with the schedule family's scheduler. The
    /// round-level compiler (`to_lockstep`) lives in `kset-core`'s scenario
    /// adapters, next to the round executor it targets.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] of [`Scenario::validate`].
    pub fn to_sim<P: ScenarioProcess>(
        &self,
    ) -> Result<SimEngine<P, NoOracle, ScenarioScheduler>, ScenarioError> {
        // Validation (inside to_simulation) must precede scheduler
        // construction: the schedulers assert their parameters, and the
        // error contract promises a typed ScenarioError instead.
        let sim = self.to_simulation::<P>()?;
        Ok(SimEngine::new(sim, self.scheduler()?))
    }

    /// Compiles the scenario to the discrete-event substrate — defined for
    /// **every** schedule family:
    ///
    /// * [`ScheduleFamily::Timed`] compiles natively: initially-dead
    ///   processes enter the simulation's crash plan, every
    ///   [`ScenarioCrash`] becomes a virtual-time adversary strike
    ///   ([`DesEngine::schedule_crash`] at `t = round`), and a non-`None`
    ///   detector choice enables the sampling cadence at the latency lower
    ///   bound (the fastest the modelled network can change).
    /// * Every other family takes the unit→time embedding
    ///   ([`DesEngine::embedded`]) around the family's own scheduler, so
    ///   the run replays the exact [`Scenario::to_sim`] step sequence under
    ///   the event-driven clock.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] of [`Scenario::validate`].
    pub fn to_des<P: ScenarioProcess>(&self) -> Result<DesEngine<P, NoOracle>, ScenarioError> {
        self.validate()?;
        match &self.schedule {
            ScheduleFamily::Timed { latency, gst, seed } => {
                let sim = Simulation::try_new(
                    P::scenario_inputs(self),
                    CrashPlan::initially_dead(self.initially_dead),
                )?;
                let mut engine = DesEngine::timed(sim, *latency, *gst, *seed);
                for c in &self.crashes {
                    engine.schedule_crash(c.pid, VirtualTime::new(c.round as u64));
                }
                if self.detector != DetectorChoice::None {
                    engine = engine.with_detector_cadence(latency.lo);
                }
                Ok(engine)
            }
            _ => {
                let scheduler = self.scheduler()?;
                Ok(DesEngine::embedded(self.to_simulation::<P>()?, scheduler))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plain-text scenario serialization: one line per scenario.
// ---------------------------------------------------------------------------

/// Why a scenario line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioParseError {
    /// The line does not start with the `scenario` keyword.
    NotAScenario,
    /// A required field keyword is missing or out of order.
    MissingField(&'static str),
    /// A field's value token does not parse.
    BadField {
        /// The field being read.
        field: &'static str,
        /// The offending token.
        token: String,
    },
    /// Tokens remain after the last field.
    TrailingTokens(String),
}

impl fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioParseError::NotAScenario => {
                write!(f, "not a scenario line (expected the `scenario` keyword)")
            }
            ScenarioParseError::MissingField(field) => {
                write!(f, "missing or misplaced field {field:?}")
            }
            ScenarioParseError::BadField { field, token } => {
                write!(f, "field {field:?}: cannot parse {token:?}")
            }
            ScenarioParseError::TrailingTokens(rest) => {
                write!(f, "trailing tokens after the last field: {rest:?}")
            }
        }
    }
}

impl std::error::Error for ScenarioParseError {}

use crate::textfmt::{parse_csv_with, render_csv};

/// Parses a comma-separated list rendered by
/// [`render_csv`](crate::textfmt::render_csv), mapping a malformed
/// element to the typed field error.
fn parse_csv<T>(
    field: &'static str,
    token: &str,
    parse_one: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, ScenarioParseError> {
    parse_csv_with(token, parse_one).ok_or_else(|| ScenarioParseError::BadField {
        field,
        token: token.to_string(),
    })
}

impl Scenario {
    /// Renders the scenario as **one line** of the plain-text scenario
    /// table format — the citable form: an EXPERIMENTS table can name a
    /// scenario by content, not just by `(grid_seed, index)`.
    ///
    /// The grammar is token-delimited with fixed field order; empty lists
    /// render as `-`:
    ///
    /// ```text
    /// scenario n 5 f 3 k 1 rounds 4 inputs 0,1,2,3,4 dead 4 \
    ///   crashes 0@1>1;1@2>2,3 schedule lockstep detector none units 368
    /// ```
    ///
    /// Crashes are `pid@round>receivers`, semicolon-separated; schedules
    /// are `lockstep`, `async:seed,percent,window`,
    /// `partitioned:block|block` (each block a pid csv) or
    /// `timed:lo..hi,gst,seed`; detectors are `none`, `perfect`,
    /// `sigmaomega:k,tgst` or `loneliness`. Unknown schedule or detector
    /// dialects (from newer writers) are rejected with a typed
    /// [`ScenarioParseError::BadField`], never a panic.
    /// [`Scenario::parse_line`] inverts this exactly
    /// (`parse_line(render_line(s)) == s` for every scenario, valid or
    /// not — serialization does not validate; run
    /// [`Scenario::validate`] separately).
    pub fn render_line(&self) -> String {
        // Crash entries contain commas (receiver lists), so the crash
        // list joins with semicolons instead of `render_csv`'s commas.
        let crashes = if self.crashes.is_empty() {
            "-".to_string()
        } else {
            self.crashes
                .iter()
                .map(|c| {
                    format!(
                        "{}@{}>{}",
                        c.pid.index(),
                        c.round,
                        render_csv(c.receivers.iter().map(|p| p.index().to_string()))
                    )
                })
                .collect::<Vec<_>>()
                .join(";")
        };
        let schedule = match &self.schedule {
            ScheduleFamily::LockStepRounds => "lockstep".to_string(),
            ScheduleFamily::Async {
                seed,
                deliver_percent,
                fairness_window,
            } => format!("async:{seed},{deliver_percent},{fairness_window}"),
            ScheduleFamily::Partitioned { blocks } => {
                let rendered: Vec<String> = blocks
                    .iter()
                    .map(|b| render_csv(b.iter().map(|p| p.index().to_string())))
                    .collect();
                if rendered.is_empty() {
                    "partitioned:-".to_string()
                } else {
                    format!("partitioned:{}", rendered.join("|"))
                }
            }
            ScheduleFamily::Timed { latency, gst, seed } => {
                format!("timed:{latency},{gst},{seed}")
            }
        };
        let detector = match self.detector {
            DetectorChoice::None => "none".to_string(),
            DetectorChoice::Perfect => "perfect".to_string(),
            DetectorChoice::SigmaOmega { k, tgst } => format!("sigmaomega:{k},{tgst}"),
            DetectorChoice::Loneliness => "loneliness".to_string(),
        };
        format!(
            "scenario n {} f {} k {} rounds {} inputs {} dead {} crashes {} \
             schedule {} detector {} units {}",
            self.n,
            self.f,
            self.k,
            self.rounds,
            render_csv(self.inputs.iter().map(u64::to_string)),
            render_csv(self.initially_dead.iter().map(|p| p.index().to_string())),
            crashes,
            schedule,
            detector,
            self.max_units,
        )
    }

    /// Parses one line of the scenario table format — the exact inverse
    /// of [`Scenario::render_line`].
    ///
    /// Parsing restores the value without validating it; call
    /// [`Scenario::validate`] on the result before compiling.
    ///
    /// # Errors
    ///
    /// A [`ScenarioParseError`] naming the first offending field.
    ///
    /// # Examples
    ///
    /// ```
    /// use kset_sim::Scenario;
    ///
    /// let sc = Scenario::favourable(4, 1, 1);
    /// let line = sc.render_line();
    /// assert_eq!(Scenario::parse_line(&line), Ok(sc));
    /// ```
    pub fn parse_line(line: &str) -> Result<Self, ScenarioParseError> {
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("scenario") {
            return Err(ScenarioParseError::NotAScenario);
        }
        let mut field = |name: &'static str| -> Result<&str, ScenarioParseError> {
            if tokens.next() != Some(name) {
                return Err(ScenarioParseError::MissingField(name));
            }
            tokens.next().ok_or(ScenarioParseError::MissingField(name))
        };
        fn num<T: std::str::FromStr>(
            field: &'static str,
            token: &str,
        ) -> Result<T, ScenarioParseError> {
            token.parse().map_err(|_| ScenarioParseError::BadField {
                field,
                token: token.to_string(),
            })
        }

        let n: usize = num("n", field("n")?)?;
        let f: usize = num("f", field("f")?)?;
        let k: usize = num("k", field("k")?)?;
        let rounds: usize = num("rounds", field("rounds")?)?;
        let inputs: Vec<u64> = parse_csv("inputs", field("inputs")?, |t| t.parse().ok())?;
        let dead: Vec<usize> = parse_csv("dead", field("dead")?, |t| t.parse().ok())?;

        let crashes_token = field("crashes")?;
        let mut crashes = Vec::new();
        if crashes_token != "-" {
            for entry in crashes_token.split(';') {
                let bad = || ScenarioParseError::BadField {
                    field: "crashes",
                    token: entry.to_string(),
                };
                let (pid_round, receivers) = entry.split_once('>').ok_or_else(bad)?;
                let (pid, round) = pid_round.split_once('@').ok_or_else(bad)?;
                let receivers: Vec<usize> =
                    parse_csv("crashes", receivers, |t| t.parse().ok()).map_err(|_| bad())?;
                crashes.push(ScenarioCrash {
                    pid: ProcessId::new(pid.parse().map_err(|_| bad())?),
                    round: round.parse().map_err(|_| bad())?,
                    receivers: receivers.into_iter().map(ProcessId::new).collect(),
                });
            }
        }

        let schedule_token = field("schedule")?;
        let schedule = match schedule_token.split_once(':') {
            None if schedule_token == "lockstep" => ScheduleFamily::LockStepRounds,
            Some(("async", rest)) => {
                let parts: Vec<&str> = rest.split(',').collect();
                let bad = || ScenarioParseError::BadField {
                    field: "schedule",
                    token: schedule_token.to_string(),
                };
                let [seed, percent, window] = parts[..] else {
                    return Err(bad());
                };
                ScheduleFamily::Async {
                    seed: seed.parse().map_err(|_| bad())?,
                    deliver_percent: percent.parse().map_err(|_| bad())?,
                    fairness_window: window.parse().map_err(|_| bad())?,
                }
            }
            Some(("partitioned", rest)) => {
                let blocks = if rest == "-" {
                    Vec::new()
                } else {
                    rest.split('|')
                        .map(|b| {
                            parse_csv("schedule", b, |t| t.parse::<usize>().ok())
                                .map(|pids| pids.into_iter().map(ProcessId::new).collect())
                        })
                        .collect::<Result<Vec<ProcessSet>, _>>()?
                };
                ScheduleFamily::Partitioned { blocks }
            }
            Some(("timed", rest)) => {
                let bad = || ScenarioParseError::BadField {
                    field: "schedule",
                    token: schedule_token.to_string(),
                };
                let parts: Vec<&str> = rest.split(',').collect();
                let [latency, gst, seed] = parts[..] else {
                    return Err(bad());
                };
                let (lo, hi) = latency.split_once("..").ok_or_else(bad)?;
                ScheduleFamily::Timed {
                    latency: Latency::uniform(
                        lo.parse().map_err(|_| bad())?,
                        hi.parse().map_err(|_| bad())?,
                    ),
                    gst: gst.parse().map_err(|_| bad())?,
                    seed: seed.parse().map_err(|_| bad())?,
                }
            }
            _ => {
                return Err(ScenarioParseError::BadField {
                    field: "schedule",
                    token: schedule_token.to_string(),
                });
            }
        };

        let detector_token = field("detector")?;
        let detector = match detector_token.split_once(':') {
            None if detector_token == "none" => DetectorChoice::None,
            None if detector_token == "perfect" => DetectorChoice::Perfect,
            None if detector_token == "loneliness" => DetectorChoice::Loneliness,
            Some(("sigmaomega", rest)) => {
                let bad = || ScenarioParseError::BadField {
                    field: "detector",
                    token: detector_token.to_string(),
                };
                let (dk, tgst) = rest.split_once(',').ok_or_else(bad)?;
                DetectorChoice::SigmaOmega {
                    k: dk.parse().map_err(|_| bad())?,
                    tgst: tgst.parse().map_err(|_| bad())?,
                }
            }
            _ => {
                return Err(ScenarioParseError::BadField {
                    field: "detector",
                    token: detector_token.to_string(),
                });
            }
        };

        let max_units: u64 = num("units", field("units")?)?;
        let rest: Vec<&str> = tokens.collect();
        if !rest.is_empty() {
            return Err(ScenarioParseError::TrailingTokens(rest.join(" ")));
        }

        Ok(Scenario {
            n,
            f,
            k,
            inputs,
            rounds,
            initially_dead: dead.into_iter().map(ProcessId::new).collect(),
            crashes,
            schedule,
            detector,
            max_units,
        })
    }
}

/// The concrete scheduler a [`ScheduleFamily`] compiles to — an enum rather
/// than a boxed trait object so [`Scenario::to_sim`] returns a fully
/// concrete engine type.
#[derive(Debug, Clone)]
pub enum ScenarioScheduler {
    /// [`ScheduleFamily::LockStepRounds`].
    LockStep(RoundRobin),
    /// [`ScheduleFamily::Async`].
    Async(SeededRandom),
    /// [`ScheduleFamily::Partitioned`].
    Partitioned(PartitionScheduler),
}

impl<M> Scheduler<M> for ScenarioScheduler {
    fn next(&mut self, view: &SimView<'_, M>) -> Option<Choice> {
        match self {
            ScenarioScheduler::LockStep(s) => Scheduler::<M>::next(s, view),
            ScenarioScheduler::Async(s) => Scheduler::<M>::next(s, view),
            ScenarioScheduler::Partitioned(s) => Scheduler::<M>::next(s, view),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Envelope;
    use crate::process::{Effects, ProcessInfo};
    use crate::sweep::scale_grid;
    use crate::Engine;

    /// Minimal scenario-constructible process: decides its own input.
    #[derive(Debug, Clone, Hash)]
    struct Own(u64);

    impl Process for Own {
        type Msg = u64;
        type Input = u64;
        type Output = u64;
        type Fd = ();

        fn init(_info: ProcessInfo, input: u64) -> Self {
            Own(input)
        }

        fn step(
            &mut self,
            _delivered: &[Envelope<u64>],
            _fd: Option<&()>,
            effects: &mut Effects<u64, u64>,
        ) {
            effects.decide(self.0);
        }
    }

    impl ScenarioProcess for Own {
        fn scenario_inputs(scenario: &Scenario) -> Vec<u64> {
            scenario.inputs.clone()
        }
    }

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn favourable_defaults_are_consistent() {
        let sc = Scenario::favourable(6, 3, 2);
        assert_eq!(sc.rounds, 2);
        assert_eq!(sc.inputs, vec![0, 1, 2, 3, 4, 5]);
        assert!(sc.is_lock_step());
        assert!(sc.validate().is_ok());
        assert!(sc.faulty().is_empty());
    }

    #[test]
    fn validation_rejects_malformed_scenarios() {
        let infeasible = Scenario::favourable(4, 4, 1);
        assert!(matches!(
            infeasible.validate(),
            Err(ScenarioError::Infeasible { .. })
        ));

        let bad_inputs = Scenario::favourable(4, 1, 1).with_inputs(vec![1, 2]);
        assert!(matches!(
            bad_inputs.validate(),
            Err(ScenarioError::InputCount { n: 4, inputs: 2 })
        ));

        let crash = |round| ScenarioCrash {
            pid: pid(0),
            round,
            receivers: ProcessSet::new(),
        };
        let dup = Scenario::favourable(4, 2, 1)
            .with_crash(crash(1))
            .with_crash(crash(2));
        assert_eq!(dup.validate(), Err(ScenarioError::DuplicateCrash(pid(0))));

        let oor = Scenario::favourable(4, 1, 1).with_crash(crash(5));
        assert!(matches!(
            oor.validate(),
            Err(ScenarioError::RoundOutOfRange {
                round: 5,
                rounds: 2
            })
        ));

        let over = Scenario::favourable(4, 1, 1)
            .with_initially_dead(pid(1))
            .with_crash(crash(1));
        assert_eq!(
            over.validate(),
            Err(ScenarioError::TooManyFaulty { faulty: 2, f: 1 })
        );

        let oversized = Scenario::favourable(ProcessSet::CAPACITY + 1, 1, 1);
        assert!(matches!(
            oversized.validate(),
            Err(ScenarioError::Capacity(_))
        ));

        // A crash naming a process outside 0..n would silently affect
        // nothing on either substrate — reject it instead.
        let ghost = Scenario::favourable(4, 1, 1).with_crash(ScenarioCrash {
            pid: pid(7),
            round: 1,
            receivers: ProcessSet::new(),
        });
        assert_eq!(
            ghost.validate(),
            Err(ScenarioError::CrashOutOfRange { pid: pid(7), n: 4 })
        );
        let ghost_dead = Scenario::favourable(4, 1, 1).with_initially_dead(pid(4));
        assert_eq!(
            ghost_dead.validate(),
            Err(ScenarioError::CrashOutOfRange { pid: pid(4), n: 4 })
        );
    }

    #[test]
    fn validation_covers_schedule_and_detector_parameters() {
        // to_sim's error contract: malformed family parameters surface as
        // ScenarioError, never as a scheduler-constructor panic.
        let base = Scenario::favourable(4, 1, 1);
        let over_percent = base.clone().with_schedule(ScheduleFamily::Async {
            seed: 1,
            deliver_percent: 150,
            fairness_window: 4,
        });
        assert!(matches!(
            over_percent.validate(),
            Err(ScenarioError::BadSchedule { .. })
        ));
        assert!(over_percent.to_sim::<Own>().is_err());

        let zero_window = base.clone().with_schedule(ScheduleFamily::Async {
            seed: 1,
            deliver_percent: 50,
            fairness_window: 0,
        });
        assert!(matches!(
            zero_window.validate(),
            Err(ScenarioError::BadSchedule { .. })
        ));

        let overlapping = base.clone().with_schedule(ScheduleFamily::Partitioned {
            blocks: vec![[pid(0), pid(1)].into(), [pid(1), pid(2)].into()],
        });
        assert!(matches!(
            overlapping.validate(),
            Err(ScenarioError::BadSchedule { .. })
        ));
        assert!(overlapping.to_sim::<Own>().is_err());

        // A block naming only nonexistent processes would silently leave
        // every real process in a singleton block — reject it instead.
        let ghost_block = base.clone().with_schedule(ScheduleFamily::Partitioned {
            blocks: vec![[pid(8), pid(9)].into()],
        });
        assert!(matches!(
            ghost_block.validate(),
            Err(ScenarioError::BadSchedule { .. })
        ));

        let bad_degree = base.with_detector(DetectorChoice::SigmaOmega { k: 10, tgst: 5 });
        assert_eq!(
            bad_degree.validate(),
            Err(ScenarioError::DetectorDegree { k: 10, n: 4 })
        );
    }

    #[test]
    fn crash_plan_projection_maps_rounds_to_local_steps() {
        let sc = Scenario::favourable(4, 2, 1)
            .with_initially_dead(pid(3))
            .with_crash(ScenarioCrash {
                pid: pid(0),
                round: 2,
                receivers: [pid(1)].into(),
            });
        let plan = sc.crash_plan();
        assert!(plan.is_initially_dead(pid(3)));
        let (steps, om) = plan.crash_for(pid(0)).expect("scheduled");
        assert_eq!(steps, 2);
        assert_eq!(om, &Omission::KeepOnlyTo([pid(1)].into()));
        assert_eq!(sc.faulty(), [pid(0), pid(3)].into());
    }

    #[test]
    fn to_sim_compiles_and_runs() {
        let sc = Scenario::favourable(3, 0, 1);
        let mut engine = sc.to_sim::<Own>().expect("valid scenario");
        let status = engine.drive(sc.max_units);
        assert_eq!(status.stop, crate::StopReason::AllCorrectDecided);
        assert_eq!(engine.decisions(), vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn to_sim_rejects_invalid_scenarios() {
        let sc = Scenario::favourable(4, 1, 1).with_inputs(vec![7]);
        assert!(sc.to_sim::<Own>().is_err());
    }

    #[test]
    fn from_cell_is_deterministic_and_valid() {
        let grid = scale_grid(&[8, 16], &[3], &[1, 2], 42).expect("within capacity");
        for cell in &grid {
            let a = Scenario::from_cell(cell);
            let b = Scenario::from_cell(cell);
            assert_eq!(a, b, "same cell must map to the same scenario");
            a.validate().expect("generated scenarios are valid");
            assert_eq!(a.faulty().len(), cell.f, "exactly f crashing processes");
            assert!(a
                .crashes
                .iter()
                .all(|c| c.round >= 1 && c.round <= a.rounds));
        }
        // Different seeds produce different crash layouts somewhere.
        let other = scale_grid(&[8, 16], &[3], &[1, 2], 43).expect("within capacity");
        assert!(
            grid.iter()
                .zip(&other)
                .any(|(x, y)| Scenario::from_cell(x).crashes != Scenario::from_cell(y).crashes),
            "grid seed must influence the crash layout"
        );
    }

    #[test]
    fn scenario_lines_round_trip() {
        // Every schedule family, detector choice, crash shape and empty
        // list must survive render → parse exactly.
        let scenarios = vec![
            Scenario::favourable(4, 1, 1),
            Scenario::favourable(5, 3, 2)
                .with_initially_dead(pid(4))
                .with_crash(ScenarioCrash {
                    pid: pid(0),
                    round: 1,
                    receivers: [pid(1), pid(3)].into(),
                })
                .with_crash(ScenarioCrash {
                    pid: pid(2),
                    round: 2,
                    receivers: ProcessSet::new(),
                }),
            Scenario::favourable(6, 2, 1)
                .with_schedule(ScheduleFamily::Async {
                    seed: 0xDEAD_BEEF,
                    deliver_percent: 35,
                    fairness_window: 9,
                })
                .with_detector(DetectorChoice::SigmaOmega { k: 2, tgst: 777 })
                .with_inputs(vec![9, 9, 9, 0, 0, 0]),
            Scenario::favourable(5, 1, 1)
                .with_schedule(ScheduleFamily::Partitioned {
                    blocks: vec![[pid(0), pid(1)].into(), [pid(2)].into()],
                })
                .with_detector(DetectorChoice::Perfect),
            Scenario::favourable(3, 1, 2)
                .with_detector(DetectorChoice::Loneliness)
                .with_max_units(123_456),
            Scenario::favourable(5, 2, 1)
                .with_schedule(ScheduleFamily::Timed {
                    latency: Latency::uniform(2, 9),
                    gst: 50,
                    seed: 0xFEED,
                })
                .with_crash(ScenarioCrash {
                    pid: pid(1),
                    round: 7,
                    receivers: ProcessSet::new(),
                }),
        ];
        for sc in scenarios {
            let line = sc.render_line();
            assert!(line.starts_with("scenario n "), "one-line table row");
            assert!(!line.contains('\n'));
            let parsed = Scenario::parse_line(&line)
                .unwrap_or_else(|e| panic!("round-trip of {line:?}: {e}"));
            assert_eq!(parsed, sc, "line {line:?}");
            assert_eq!(parsed.render_line(), line, "re-render is stable");
        }
    }

    #[test]
    fn grid_scenarios_round_trip_by_content() {
        // The citation use case: every scenario a sweep grid generates is
        // recoverable from its table line alone — content, not
        // (grid_seed, index).
        let grid = scale_grid(&[8, 16, 32], &[1, 3], &[1, 2], 42).expect("within capacity");
        for cell in &grid {
            let sc = Scenario::from_cell(cell);
            let parsed = Scenario::parse_line(&sc.render_line()).expect("grid scenarios parse");
            assert_eq!(parsed, sc);
            parsed.validate().expect("parsed scenarios stay valid");
        }
    }

    #[test]
    fn scenario_parse_errors_are_typed() {
        assert_eq!(
            Scenario::parse_line("not a scenario"),
            Err(ScenarioParseError::NotAScenario)
        );
        let good = Scenario::favourable(4, 1, 1).render_line();
        assert_eq!(
            Scenario::parse_line(&good.replace(" f 1 ", " g 1 ")),
            Err(ScenarioParseError::MissingField("f"))
        );
        assert_eq!(
            Scenario::parse_line(&good.replace(" n 4 ", " n four ")),
            Err(ScenarioParseError::BadField {
                field: "n",
                token: "four".to_string()
            })
        );
        assert!(matches!(
            Scenario::parse_line(&good.replace("schedule lockstep", "schedule chaos")),
            Err(ScenarioParseError::BadField {
                field: "schedule",
                ..
            })
        ));
        // Forward compatibility: an unknown dialect from a newer writer —
        // parameterized or not — is a typed rejection, not a panic.
        for unknown in ["schedule quantum:1,2,3", "schedule timed2:4..9,0,1"] {
            assert!(matches!(
                Scenario::parse_line(&good.replace("schedule lockstep", unknown)),
                Err(ScenarioParseError::BadField {
                    field: "schedule",
                    ..
                })
            ));
        }
        // Malformed timed forms: missing parts, missing the `..` range
        // separator, non-numeric tokens.
        for malformed in [
            "schedule timed:2..9,50",
            "schedule timed:9,50,1",
            "schedule timed:a..9,50,1",
            "schedule timed:2..9,50,1,8",
        ] {
            assert!(
                matches!(
                    Scenario::parse_line(&good.replace("schedule lockstep", malformed)),
                    Err(ScenarioParseError::BadField {
                        field: "schedule",
                        ..
                    })
                ),
                "{malformed} must be rejected"
            );
        }
        assert!(matches!(
            Scenario::parse_line(&format!("{good} extra")),
            Err(ScenarioParseError::TrailingTokens(_))
        ));
        // Crash grammar: missing the `>` receiver separator.
        let crashy = Scenario::favourable(4, 1, 1)
            .with_crash(ScenarioCrash {
                pid: pid(0),
                round: 1,
                receivers: [pid(1)].into(),
            })
            .render_line();
        assert!(matches!(
            Scenario::parse_line(&crashy.replace("0@1>1", "0@1")),
            Err(ScenarioParseError::BadField {
                field: "crashes",
                ..
            })
        ));
        // Serialization restores without validating; validation is the
        // caller's separate step.
        let infeasible = Scenario::favourable(4, 1, 1).with_inputs(vec![1]);
        let parsed = Scenario::parse_line(&infeasible.render_line()).expect("parses unvalidated");
        assert!(parsed.validate().is_err());
    }

    #[test]
    fn scheduler_families_compile() {
        let lock = Scenario::favourable(3, 0, 1);
        assert!(matches!(
            lock.scheduler(),
            Ok(ScenarioScheduler::LockStep(_))
        ));

        let async_sc = lock.clone().with_schedule(ScheduleFamily::Async {
            seed: 7,
            deliver_percent: 50,
            fairness_window: 8,
        });
        assert!(matches!(
            async_sc.scheduler(),
            Ok(ScenarioScheduler::Async(_))
        ));
        assert!(!async_sc.is_lock_step());

        let part = lock.clone().with_schedule(ScheduleFamily::Partitioned {
            blocks: vec![[pid(0)].into(), [pid(1), pid(2)].into()],
        });
        assert!(matches!(
            part.scheduler(),
            Ok(ScenarioScheduler::Partitioned(_))
        ));

        // The timed family has no unit scheduler: scheduler() and to_sim
        // reject it with a typed error, to_des compiles it natively.
        let timed = lock.with_schedule(ScheduleFamily::Timed {
            latency: Latency::uniform(1, 3),
            gst: 0,
            seed: 5,
        });
        assert!(matches!(
            timed.scheduler(),
            Err(ScenarioError::BadSchedule { .. })
        ));
        assert!(matches!(
            timed.to_sim::<Own>(),
            Err(ScenarioError::BadSchedule { .. })
        ));
    }

    #[test]
    fn timed_scenarios_validate_their_own_rules() {
        let timed = |latency| {
            Scenario::favourable(4, 1, 1).with_schedule(ScheduleFamily::Timed {
                latency,
                gst: 10,
                seed: 1,
            })
        };
        assert!(timed(Latency::uniform(1, 3)).validate().is_ok());
        // Zero-latency links admit Zeno cascades; inverted bounds are
        // nonsense — both are typed rejections.
        assert!(matches!(
            timed(Latency::fixed(0)).validate(),
            Err(ScenarioError::BadSchedule { .. })
        ));
        assert!(matches!(
            timed(Latency::uniform(5, 2)).validate(),
            Err(ScenarioError::BadSchedule { .. })
        ));
        // Timed crashes are crash-stop: receivers express mid-round
        // partial delivery, which has no timed counterpart.
        let receivers = timed(Latency::fixed(2)).with_crash(ScenarioCrash {
            pid: pid(0),
            round: 1,
            receivers: [pid(1)].into(),
        });
        assert!(matches!(
            receivers.validate(),
            Err(ScenarioError::BadSchedule { .. })
        ));
        // `round` is a virtual time under this family: values beyond the
        // scheduled round count are fine, zero is not.
        let late = timed(Latency::fixed(2)).with_crash(ScenarioCrash {
            pid: pid(0),
            round: 500,
            receivers: ProcessSet::new(),
        });
        assert!(late.validate().is_ok());
        let zero = timed(Latency::fixed(2)).with_crash(ScenarioCrash {
            pid: pid(0),
            round: 0,
            receivers: ProcessSet::new(),
        });
        assert!(matches!(
            zero.validate(),
            Err(ScenarioError::RoundOutOfRange { round: 0, .. })
        ));
    }

    #[test]
    fn to_des_compiles_every_family() {
        // Native timed compilation, crash strike included.
        let timed = Scenario::favourable(4, 1, 1)
            .with_schedule(ScheduleFamily::Timed {
                latency: Latency::uniform(2, 6),
                gst: 0,
                seed: 11,
            })
            .with_crash(ScenarioCrash {
                pid: pid(3),
                round: 1,
                receivers: ProcessSet::new(),
            });
        let mut engine = timed.to_des::<Own>().expect("valid timed scenario");
        let status = engine.drive(timed.max_units);
        assert_eq!(status.stop, crate::StopReason::AllCorrectDecided);
        let decisions = engine.decisions();
        assert_eq!(decisions[0..3], [Some(0), Some(1), Some(2)]);
        assert_eq!(decisions[3], None, "struck at t=1, before its first step");

        // The unit→time embedding: a lock-step scenario decides
        // identically on the DES engine and on the step engine.
        let lock = Scenario::favourable(3, 0, 1);
        let mut des = lock.to_des::<Own>().expect("valid");
        let mut sim = lock.to_sim::<Own>().expect("valid");
        assert_eq!(
            des.drive(lock.max_units),
            sim.drive(lock.max_units),
            "embedded drive status matches the step substrate"
        );
        assert_eq!(des.decisions(), sim.decisions());

        // Invalid scenarios are rejected before compilation.
        assert!(Scenario::favourable(4, 1, 1)
            .with_inputs(vec![7])
            .to_des::<Own>()
            .is_err());
    }
}
