//! Restriction of an algorithm to a subsystem (Definition 1 of the paper).
//!
//! Given an algorithm `A` for `M = ⟨Π⟩` and a nonempty `D ⊆ Π`, the
//! restricted algorithm `A|D` for `M′ = ⟨D⟩` is obtained by *dropping all
//! messages sent to processes outside `D`* in the message sending function.
//! The code of `A` is otherwise unchanged — in particular it still uses
//! `|Π|` as the system size, even though only `|D|` processes exist.
//!
//! [`Restricted`] wraps any [`Process`] and filters its sends;
//! [`restricted_simulation`] builds the standard execution environment for
//! `M′ = ⟨D⟩`: a full-size system in which the processes outside `D` are
//! initially dead, which is exactly the run correspondence used in the
//! proofs of Theorems 2 and 10 (condition (D): for every run of `A|D` there
//! is an indistinguishable run of `A` where `Π \ D` is initially dead).

use crate::engine::Simulation;
use crate::failure::CrashPlan;
use crate::ids::{CapacityError, ProcessId, ProcessSet};
use crate::message::Envelope;
use crate::oracle::{NoOracle, Oracle};
use crate::process::{Effects, Process, ProcessInfo};

/// The restricted algorithm `A|D`: forwards everything to the inner
/// process, dropping sends to non-members of `D`.
#[derive(Debug, Clone)]
pub struct Restricted<P> {
    inner: P,
    members: ProcessSet,
}

/// The *state* of `A|D` is the inner algorithm's state — Definition 1 does
/// not change the code, so the membership set is static configuration, not
/// state. Hashing only the inner state makes runs of `A|D` fingerprint-
/// comparable with runs of `A` (condition (D) of Theorem 1 relies on this).
impl<P: std::hash::Hash> std::hash::Hash for Restricted<P> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
    }
}

impl<P> Restricted<P> {
    /// The restriction set `D`.
    pub fn members(&self) -> ProcessSet {
        self.members
    }

    /// The wrapped process state.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Process> Process for Restricted<P> {
    type Msg = P::Msg;
    type Input = (ProcessSet, P::Input);
    type Output = P::Output;
    type Fd = P::Fd;

    fn init(info: ProcessInfo, (members, input): Self::Input) -> Self {
        Restricted {
            inner: P::init(info, input),
            members,
        }
    }

    fn step(
        &mut self,
        delivered: &[Envelope<Self::Msg>],
        fd: Option<&Self::Fd>,
        effects: &mut Effects<Self::Msg, Self::Output>,
    ) {
        let mut inner_effects = Effects::new(effects.info());
        // kset-lint: allow(observer-bypass): Process::step delegation to the wrapped algorithm, not a Simulation::step call; the engine drives this through the observed path
        self.inner.step(delivered, fd, &mut inner_effects);
        let (sends, decision) = inner_effects.into_parts();
        for (dst, msg) in sends {
            if self.members.contains(dst) {
                effects.send(dst, msg);
            }
        }
        if let Some(v) = decision {
            effects.decide(v);
        }
    }
}

/// Builds the canonical `M′ = ⟨D⟩` execution environment for `A|D` without
/// failure detectors: a system of the original size `n` running
/// [`Restricted`] processes, with all processes outside `d` initially dead
/// and `extra_plan`'s failures applied inside `d`.
///
/// # Panics
///
/// Panics if `d` is empty, references processes outside the system, or
/// `inputs.len()` disagrees with `n`.
pub fn restricted_simulation<P>(
    inputs: Vec<P::Input>,
    d: ProcessSet,
    extra_plan: CrashPlan,
) -> Simulation<Restricted<P>, NoOracle>
where
    P: Process<Fd = ()>,
    P::Input: Clone,
{
    match try_restricted_simulation(inputs, d, extra_plan) {
        Ok(sim) => sim,
        // kset-lint: allow(panic-in-library): documented panicking convenience wrapper over try_restricted_simulation
        Err(e) => panic!("{e}"),
    }
}

/// As [`restricted_simulation`], but a system size beyond the process-set
/// capacity is a [`CapacityError`] instead of a panic.
pub fn try_restricted_simulation<P>(
    inputs: Vec<P::Input>,
    d: ProcessSet,
    extra_plan: CrashPlan,
) -> Result<Simulation<Restricted<P>, NoOracle>, CapacityError>
where
    P: Process<Fd = ()>,
    P::Input: Clone,
{
    let plan = restriction_plan(inputs.len(), d, extra_plan);
    let wrapped: Vec<(ProcessSet, P::Input)> = inputs.into_iter().map(|x| (d, x)).collect();
    Simulation::try_new(wrapped, plan)
}

/// As [`restricted_simulation`], with a failure-detector oracle.
pub fn restricted_simulation_with_oracle<P, O>(
    inputs: Vec<P::Input>,
    d: ProcessSet,
    oracle: O,
    extra_plan: CrashPlan,
) -> Simulation<Restricted<P>, O>
where
    P: Process,
    P::Input: Clone,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    match try_restricted_simulation_with_oracle(inputs, d, oracle, extra_plan) {
        Ok(sim) => sim,
        // kset-lint: allow(panic-in-library): documented panicking convenience wrapper over try_restricted_simulation_with_oracle
        Err(e) => panic!("{e}"),
    }
}

/// As [`restricted_simulation_with_oracle`], but a system size beyond the
/// process-set capacity is a [`CapacityError`] instead of a panic.
pub fn try_restricted_simulation_with_oracle<P, O>(
    inputs: Vec<P::Input>,
    d: ProcessSet,
    oracle: O,
    extra_plan: CrashPlan,
) -> Result<Simulation<Restricted<P>, O>, CapacityError>
where
    P: Process,
    P::Input: Clone,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let plan = restriction_plan(inputs.len(), d, extra_plan);
    let wrapped: Vec<(ProcessSet, P::Input)> = inputs.into_iter().map(|x| (d, x)).collect();
    Simulation::try_with_oracle(wrapped, oracle, plan)
}

/// The crash plan of the restricted environment: everyone outside `d` is
/// initially dead; `extra_plan`'s failures (which must concern members of
/// `d`) are kept.
///
/// # Panics
///
/// Panics if `d` is empty, out of range, or `extra_plan` touches
/// non-members.
pub fn restriction_plan(n: usize, d: ProcessSet, extra_plan: CrashPlan) -> CrashPlan {
    assert!(
        !d.is_empty(),
        "restriction set D must be nonempty (Definition 1)"
    );
    assert!(
        d.iter().all(|p| p.index() < n),
        "restriction set D references processes outside the system"
    );
    assert!(
        extra_plan.faulty().is_subset(d),
        "extra failures must concern members of D"
    );
    let mut plan = extra_plan;
    for p in ProcessId::all(n) {
        if !d.contains(p) {
            plan = plan.with_initially_dead(p);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::round_robin::RoundRobin;

    /// Toy algorithm: broadcasts its input once; decides the number of
    /// distinct senders heard from (including itself) after 5 local steps.
    #[derive(Debug, Clone, Hash)]
    struct CountVoices {
        me: usize,
        steps: u64,
        heard: ProcessSet,
        sent: bool,
    }

    impl Process for CountVoices {
        type Msg = usize;
        type Input = usize;
        type Output = usize;
        type Fd = ();

        fn init(info: ProcessInfo, _input: usize) -> Self {
            CountVoices {
                me: info.id.index(),
                steps: 0,
                heard: ProcessSet::singleton(info.id),
                sent: false,
            }
        }

        fn step(
            &mut self,
            delivered: &[Envelope<usize>],
            _fd: Option<&()>,
            effects: &mut Effects<usize, usize>,
        ) {
            self.steps += 1;
            if !self.sent {
                self.sent = true;
                effects.broadcast(self.me);
            }
            for env in delivered {
                self.heard.insert(ProcessId::new(env.payload));
            }
            if self.steps >= 5 {
                effects.decide(self.heard.len());
            }
        }
    }

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn restricted_processes_never_hear_outside_d() {
        let d: ProcessSet = [pid(0), pid(1)].into();
        let mut sim = restricted_simulation::<CountVoices>(vec![0; 4], d, CrashPlan::none());
        let mut rr = RoundRobin::new();
        let report = sim.run_to_report(&mut rr, 1_000);
        assert!(report.all_correct_decided());
        // Each member heard exactly the two members of D.
        assert_eq!(report.decisions[0], Some(2));
        assert_eq!(report.decisions[1], Some(2));
        assert_eq!(report.decisions[2], None, "outside D: initially dead");
        assert_eq!(report.decisions[3], None);
    }

    #[test]
    fn restriction_drops_outbound_sends() {
        let d: ProcessSet = [pid(0)].into();
        let mut sim = restricted_simulation::<CountVoices>(vec![0; 3], d, CrashPlan::none());
        sim.step(pid(0), crate::sched::Delivery::None).unwrap();
        // The broadcast of p1 was filtered to members only: nothing in the
        // buffers of p2/p3, one self-message for p1.
        assert_eq!(sim.buffer(pid(0)).len(), 1);
        assert_eq!(sim.buffer(pid(1)).len(), 0);
        assert_eq!(sim.buffer(pid(2)).len(), 0);
    }

    #[test]
    fn restricted_still_uses_full_system_size() {
        // Definition 1: the restricted algorithm keeps using |Π|. CountVoices
        // broadcasts via info.n; the wrapper must filter, not shrink n.
        let d: ProcessSet = [pid(0), pid(2)].into();
        let mut sim = restricted_simulation::<CountVoices>(vec![0; 3], d, CrashPlan::none());
        let mut rr = RoundRobin::new();
        let report = sim.run_to_report(&mut rr, 1_000);
        assert_eq!(report.decisions[0], Some(2), "p1 hears p1 and p3");
        assert_eq!(report.decisions[2], Some(2));
    }

    #[test]
    fn extra_plan_failures_apply_within_d() {
        let d: ProcessSet = [pid(0), pid(1)].into();
        let extra = CrashPlan::initially_dead([pid(1)]);
        let mut sim = restricted_simulation::<CountVoices>(vec![0; 3], d, extra);
        let mut rr = RoundRobin::new();
        let report = sim.run_to_report(&mut rr, 1_000);
        assert_eq!(report.decisions[0], Some(1), "p1 hears only itself");
        assert_eq!(report.failure_pattern.faulty(), [pid(1), pid(2)].into());
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_restriction_set_rejected() {
        let _ = restriction_plan(3, ProcessSet::new(), CrashPlan::none());
    }

    #[test]
    #[should_panic(expected = "outside the system")]
    fn out_of_range_member_rejected() {
        let _ = restriction_plan(2, [pid(5)].into(), CrashPlan::none());
    }

    #[test]
    #[should_panic(expected = "members of D")]
    fn extra_failures_outside_d_rejected() {
        let _ = restriction_plan(3, [pid(0)].into(), CrashPlan::initially_dead([pid(2)]));
    }
}
