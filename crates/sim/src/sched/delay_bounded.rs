//! A Δ-bounded scheduler: communication synchrony, adversarial within the
//! bound.
//!
//! The favourable setting of DDS dimension 2 bounds message delay. This
//! scheduler is the *laziest admissible* adversary for that setting: it
//! steps processes round-robin (process synchrony) and holds every message
//! back until its age reaches the configured `delta`, delivering it at the
//! receiver's first step from then on. Because each process steps only
//! every `n`-th global step, the delivery delay actually realized is
//! bounded by `delta + n − 1`; runs therefore pass the Δ-admissibility
//! check ([`crate::admissible`]) for `Δ = delta + n − 1`, with most
//! deliveries sitting right at the edge — the stress point of the
//! partially synchronous envelope.

use crate::ids::{MsgId, ProcessId};
use crate::sched::{Choice, Delivery, Scheduler, SimView};

/// Round-robin scheduling with maximal (but Δ-bounded) message delay.
#[derive(Debug, Clone)]
pub struct DelayBounded {
    delta: u64,
    cursor: usize,
}

impl DelayBounded {
    /// Creates the scheduler holding messages back for `delta` steps (the
    /// realized delivery bound is `delta + n − 1`; see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`; a zero hold means eager delivery, which
    /// plain round-robin already provides.
    pub fn new(delta: u64) -> Self {
        assert!(delta > 0, "Δ must be positive");
        DelayBounded { delta, cursor: 0 }
    }

    /// The configured hold time.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The delivery bound the produced runs satisfy: `delta + n − 1`.
    pub fn realized_bound(&self, n: usize) -> u64 {
        self.delta + n as u64 - 1
    }
}

impl<M> Scheduler<M> for DelayBounded {
    fn next(&mut self, view: &SimView<'_, M>) -> Option<Choice> {
        if view.n == 0 {
            return None;
        }
        for offset in 0..view.n {
            let idx = (self.cursor + offset) % view.n;
            let pid = ProcessId::new(idx);
            if !view.is_alive(pid) {
                continue;
            }
            self.cursor = (idx + 1) % view.n;
            // Deliver exactly the messages whose age has reached Δ−1 (they
            // would breach the bound if delayed past this step).
            let due: Vec<MsgId> = view.buffers[idx]
                .iter()
                .filter(|env| view.time.next().since(env.sent_at) >= self.delta)
                .map(|env| env.id)
                .collect();
            let delivery = if due.is_empty() {
                Delivery::None
            } else {
                Delivery::Ids(due)
            };
            return Some(Choice { pid, delivery });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admissible::{check, AdmissibilityRequirements};
    use crate::engine::Simulation;
    use crate::failure::CrashPlan;
    use crate::message::Envelope;
    use crate::model::SynchronyBounds;
    use crate::process::{Effects, Process, ProcessInfo};

    /// Broadcast once, decide the minimum after hearing everyone.
    #[derive(Debug, Clone, Hash)]
    struct MinBarrier {
        n: usize,
        seen: Vec<u64>,
        sent: bool,
    }

    impl Process for MinBarrier {
        type Msg = u64;
        type Input = u64;
        type Output = u64;
        type Fd = ();

        fn init(info: ProcessInfo, input: u64) -> Self {
            MinBarrier {
                n: info.n,
                seen: vec![input],
                sent: false,
            }
        }

        fn step(
            &mut self,
            delivered: &[Envelope<u64>],
            _fd: Option<&()>,
            effects: &mut Effects<u64, u64>,
        ) {
            if !self.sent {
                self.sent = true;
                effects.broadcast_others(self.seen[0]);
            }
            self.seen.extend(delivered.iter().map(|e| e.payload));
            if self.seen.len() == self.n {
                effects.decide(*self.seen.iter().min().unwrap());
            }
        }
    }

    #[test]
    fn produced_runs_respect_the_realized_bound() {
        for delta in [1u64, 3, 7] {
            let mut sim: Simulation<MinBarrier, _> =
                Simulation::new(vec![5, 1, 9], CrashPlan::none());
            let mut sched = DelayBounded::new(delta);
            let bound = sched.realized_bound(3);
            let report = sim.run_to_report(&mut sched, 10_000);
            assert!(report.all_correct_decided(), "Δ={delta}");
            let req = AdmissibilityRequirements::bounds_only(SynchronyBounds {
                phi: Some(3),
                delta: Some(bound),
            });
            let adm = check(&report.trace, &req);
            assert!(adm.is_admissible(), "Δ={delta}: {:?}", adm.violations);
        }
    }

    #[test]
    fn messages_are_actually_delayed_to_the_bound() {
        // With Δ = 5, the first delivery cannot happen before global time
        // 5 even though messages are pending from time 1 on.
        let mut sim: Simulation<MinBarrier, _> = Simulation::new(vec![5, 1, 9], CrashPlan::none());
        let mut sched = DelayBounded::new(5);
        let report = sim.run_to_report(&mut sched, 10_000);
        assert!(report.all_correct_decided());
        let first_delivery_time = report
            .trace
            .steps()
            .find(|s| !s.delivered.is_empty())
            .map(|s| s.time.raw())
            .expect("something is delivered");
        assert!(
            first_delivery_time >= 5,
            "first delivery at t{first_delivery_time} despite Δ = 5"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_delta_rejected() {
        let _ = DelayBounded::new(0);
    }
}
