//! Schedule replay: the executable form of run pasting.
//!
//! Lemma 11 of the paper constructs a run `β′` by letting the processes in
//! `D̄` "receive messages and perform their steps exactly as in α" while the
//! partitions `D1,…,Dk−1` replay `β`. Our simulator realizes this by
//! *replaying schedules*: a [`crate::trace::ScheduleEntry`] sequence records
//! who stepped and how many of the oldest pending messages from each source
//! were delivered; replaying it in another configuration reproduces the same
//! per-source delivery sequences and hence (for deterministic processes) the
//! same state sequences, provided the cross-partition messages are delayed —
//! which is exactly what interleaving per-partition schedules achieves.

use crate::sched::{Choice, Delivery, Scheduler, SimView};
use crate::trace::ScheduleEntry;

/// Replays a fixed schedule, then stops.
#[derive(Debug, Clone)]
pub struct Scripted {
    entries: std::vec::IntoIter<ScheduleEntry>,
    skip_crashed: bool,
}

impl Scripted {
    /// Creates a replayer for the given schedule.
    pub fn new(entries: Vec<ScheduleEntry>) -> Self {
        Scripted {
            entries: entries.into_iter(),
            skip_crashed: false,
        }
    }

    /// Silently skips entries whose process has crashed in the replay
    /// configuration (useful when replaying a schedule under a *different*
    /// crash plan).
    #[must_use]
    pub fn skipping_crashed(mut self) -> Self {
        self.skip_crashed = true;
        self
    }

    /// Interleaves several schedules round-robin by entry: one entry of the
    /// first, one of the second, …, preserving each schedule's internal
    /// order.
    ///
    /// Interleaving preserves per-process delivery sequences because
    /// schedules of *disjoint* process sets never touch each other's
    /// buffers (the cross-partition messages remain undelivered); this is
    /// the pasting operation of Lemma 12.
    pub fn interleave(schedules: Vec<Vec<ScheduleEntry>>) -> Vec<ScheduleEntry> {
        let mut iters: Vec<_> = schedules.into_iter().map(Vec::into_iter).collect();
        let mut out = Vec::new();
        loop {
            let mut progressed = false;
            for it in &mut iters {
                if let Some(e) = it.next() {
                    out.push(e);
                    progressed = true;
                }
            }
            if !progressed {
                return out;
            }
        }
    }

    /// Concatenates schedules back-to-back ("one after the other", as in
    /// the α construction of Lemma 12).
    pub fn concat(schedules: Vec<Vec<ScheduleEntry>>) -> Vec<ScheduleEntry> {
        schedules.into_iter().flatten().collect()
    }
}

impl<M> Scheduler<M> for Scripted {
    fn next(&mut self, view: &SimView<'_, M>) -> Option<Choice> {
        loop {
            let entry = self.entries.next()?;
            if self.skip_crashed && !view.is_alive(entry.pid) {
                continue;
            }
            return Some(Choice {
                pid: entry.pid,
                delivery: Delivery::OldestPerSource(entry.per_source),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::ids::{ProcessId, Time};
    use crate::sched::Status;

    fn entry(pid: usize) -> ScheduleEntry {
        ScheduleEntry {
            pid: ProcessId::new(pid),
            per_source: vec![],
        }
    }

    #[test]
    fn replays_in_order_then_stops() {
        let statuses = vec![Status::Alive { local_steps: 0 }; 2];
        let decided = vec![false; 2];
        let buffers: Vec<Buffer<u32>> = (0..2).map(|_| Buffer::new()).collect();
        let view = SimView {
            n: 2,
            time: Time::ZERO,
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        let mut s = Scripted::new(vec![entry(1), entry(0)]);
        assert_eq!(Scheduler::next(&mut s, &view).unwrap().pid.index(), 1);
        assert_eq!(Scheduler::next(&mut s, &view).unwrap().pid.index(), 0);
        assert!(Scheduler::next(&mut s, &view).is_none());
    }

    #[test]
    fn skipping_crashed_filters_entries() {
        let statuses = vec![
            Status::Crashed { at: Time::ZERO },
            Status::Alive { local_steps: 0 },
        ];
        let decided = vec![false; 2];
        let buffers: Vec<Buffer<u32>> = (0..2).map(|_| Buffer::new()).collect();
        let view = SimView {
            n: 2,
            time: Time::ZERO,
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        let mut s = Scripted::new(vec![entry(0), entry(1)]).skipping_crashed();
        assert_eq!(Scheduler::next(&mut s, &view).unwrap().pid.index(), 1);
        assert!(Scheduler::next(&mut s, &view).is_none());
    }

    #[test]
    fn interleave_alternates_entries() {
        let merged = Scripted::interleave(vec![vec![entry(0), entry(0), entry(0)], vec![entry(1)]]);
        let pids: Vec<usize> = merged.iter().map(|e| e.pid.index()).collect();
        assert_eq!(pids, vec![0, 1, 0, 0]);
    }

    #[test]
    fn concat_appends() {
        let merged = Scripted::concat(vec![vec![entry(0)], vec![entry(1), entry(1)]]);
        let pids: Vec<usize> = merged.iter().map(|e| e.pid.index()).collect();
        assert_eq!(pids, vec![0, 1, 1]);
    }
}
