//! Fair round-robin scheduling with eager delivery.
//!
//! Cycles through the alive processes in id order, delivering every pending
//! message at each step. This is the "most synchronous" schedule the engine
//! offers: with no crashes it makes processes lock-step (process synchrony
//! Φ = 1) and messages arrive at the receiver's next step, so it witnesses
//! the *possibility* side of the paper's borders.

use crate::ids::ProcessId;
use crate::sched::{Choice, Delivery, Scheduler, SimView};

/// Round-robin over alive processes, delivering everything each step.
///
/// # Examples
///
/// ```
/// use kset_sim::sched::round_robin::RoundRobin;
///
/// let rr = RoundRobin::new();
/// # let _ = rr;
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a scheduler starting from `p1`.
    pub fn new() -> Self {
        RoundRobin { cursor: 0 }
    }
}

impl<M> Scheduler<M> for RoundRobin {
    fn next(&mut self, view: &SimView<'_, M>) -> Option<Choice> {
        if view.n == 0 {
            return None;
        }
        // Find the next alive process at or after the cursor (wrapping).
        for offset in 0..view.n {
            let idx = (self.cursor + offset) % view.n;
            let pid = ProcessId::new(idx);
            if view.is_alive(pid) {
                self.cursor = (idx + 1) % view.n;
                return Some(Choice {
                    pid,
                    delivery: Delivery::All,
                });
            }
        }
        None // everyone crashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::ids::Time;
    use crate::sched::Status;

    fn view<'a>(
        statuses: &'a [Status],
        decided: &'a [bool],
        buffers: &'a [Buffer<u32>],
    ) -> SimView<'a, u32> {
        SimView {
            n: statuses.len(),
            time: Time::ZERO,
            statuses,
            decided,
            buffers,
        }
    }

    #[test]
    fn cycles_in_id_order() {
        let statuses = vec![Status::Alive { local_steps: 0 }; 3];
        let decided = vec![false; 3];
        let buffers: Vec<Buffer<u32>> = (0..3).map(|_| Buffer::new()).collect();
        let v = view(&statuses, &decided, &buffers);
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..6)
            .map(|_| Scheduler::next(&mut rr, &v).unwrap().pid.index())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_crashed_processes() {
        let statuses = vec![
            Status::Alive { local_steps: 0 },
            Status::Crashed { at: Time::ZERO },
            Status::Alive { local_steps: 0 },
        ];
        let decided = vec![false; 3];
        let buffers: Vec<Buffer<u32>> = (0..3).map(|_| Buffer::new()).collect();
        let v = view(&statuses, &decided, &buffers);
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..4)
            .map(|_| Scheduler::next(&mut rr, &v).unwrap().pid.index())
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn stops_when_everyone_crashed() {
        let statuses = vec![Status::Crashed { at: Time::ZERO }];
        let decided = vec![false];
        let buffers: Vec<Buffer<u32>> = vec![Buffer::new()];
        let v = view(&statuses, &decided, &buffers);
        let mut rr = RoundRobin::new();
        assert!(Scheduler::next(&mut rr, &v).is_none());
    }

    #[test]
    fn empty_system_yields_none() {
        let statuses: Vec<Status> = vec![];
        let decided: Vec<bool> = vec![];
        let buffers: Vec<Buffer<u32>> = vec![];
        let v = view(&statuses, &decided, &buffers);
        let mut rr = RoundRobin::new();
        assert!(Scheduler::next(&mut rr, &v).is_none());
    }
}
