//! The partitioning adversary.
//!
//! The engine behind every impossibility argument in the paper: messages
//! between different partition blocks are delayed "until every correct
//! process has decided" (the construction of the run sets `H` in Theorem 2's
//! proof and `R` in Lemmas 11/12). Within a block, scheduling is fair
//! round-robin with eager delivery, so each block runs like a healthy little
//! system that simply never hears from the outside.
//!
//! After every alive process has decided, the adversary optionally *releases*
//! the delayed messages (delivering everything), which makes the produced
//! prefix extendable to an admissible run of `M_ASYNC` — every message sent
//! to a correct process is eventually received.

use crate::ids::{ProcessId, ProcessSet};
use crate::sched::{Choice, Delivery, Scheduler, SimView};

/// What the adversary does once every alive process has decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleasePolicy {
    /// Keep blocking cross-partition traffic forever (the run prefix stays
    /// "partitioned"; use when only the prefix matters).
    Never,
    /// Deliver everything (drain buffers) so the prefix extends to an
    /// admissible run.
    AfterAllDecided,
}

/// Scheduler that delays all cross-block messages until decisions are in.
#[derive(Debug, Clone)]
pub struct PartitionScheduler {
    blocks: Vec<ProcessSet>,
    release: ReleasePolicy,
    cursor: usize,
    /// Extra all-deliver steps performed per process after release, to
    /// drain buffers.
    drain_rounds: u64,
    drained: u64,
}

impl PartitionScheduler {
    /// Creates the adversary for the given partition blocks.
    ///
    /// Processes not mentioned in any block are treated as singleton blocks
    /// (they hear only from themselves).
    ///
    /// # Panics
    ///
    /// Panics if the blocks are not pairwise disjoint.
    pub fn new(blocks: Vec<ProcessSet>, release: ReleasePolicy) -> Self {
        let mut seen = ProcessSet::new();
        for block in &blocks {
            for p in block {
                assert!(
                    seen.insert(p),
                    "partition blocks must be disjoint: {p} repeated"
                );
            }
        }
        PartitionScheduler {
            blocks,
            release,
            cursor: 0,
            drain_rounds: 4,
            drained: 0,
        }
    }

    /// Sets how many all-deliver rounds per process run after release.
    #[must_use]
    pub fn with_drain_rounds(mut self, rounds: u64) -> Self {
        self.drain_rounds = rounds;
        self
    }

    /// The block of `pid`, or a singleton if unlisted.
    fn block_of(&self, pid: ProcessId) -> ProcessSet {
        self.blocks
            .iter()
            .copied()
            .find(|b| b.contains(pid))
            // kset-lint: allow(unchecked-capacity): pid comes from the live simulation view, whose system size was capacity-validated at construction
            .unwrap_or_else(|| ProcessSet::singleton(pid))
    }
}

impl<M> Scheduler<M> for PartitionScheduler {
    fn next(&mut self, view: &SimView<'_, M>) -> Option<Choice> {
        if view.n == 0 {
            return None;
        }
        let everyone_decided = view.alive().all(|p| view.has_decided(p));
        if everyone_decided {
            match self.release {
                ReleasePolicy::Never => return None,
                ReleasePolicy::AfterAllDecided => {
                    // Drain: give each alive process a few all-deliver steps.
                    let budget = self.drain_rounds * view.alive().count() as u64;
                    if self.drained >= budget {
                        return None;
                    }
                    for offset in 0..view.n {
                        let idx = (self.cursor + offset) % view.n;
                        let pid = ProcessId::new(idx);
                        if view.is_alive(pid) {
                            self.cursor = (idx + 1) % view.n;
                            self.drained += 1;
                            return Some(Choice {
                                pid,
                                delivery: Delivery::All,
                            });
                        }
                    }
                    return None;
                }
            }
        }
        // Partitioned phase: round-robin over alive, undecided-preferring
        // processes, delivering only intra-block traffic.
        for offset in 0..view.n {
            let idx = (self.cursor + offset) % view.n;
            let pid = ProcessId::new(idx);
            if view.is_alive(pid) && !view.has_decided(pid) {
                self.cursor = (idx + 1) % view.n;
                return Some(Choice {
                    pid,
                    delivery: Delivery::AllFrom(self.block_of(pid)),
                });
            }
        }
        // All alive processes decided mid-scan; recurse once to hit the
        // everyone_decided branch next call.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::ids::Time;
    use crate::sched::Status;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_blocks_rejected() {
        let _ = PartitionScheduler::new(
            vec![[pid(0), pid(1)].into(), [pid(1)].into()],
            ReleasePolicy::Never,
        );
    }

    #[test]
    fn unlisted_processes_are_singletons() {
        let sched = PartitionScheduler::new(vec![[pid(0), pid(1)].into()], ReleasePolicy::Never);
        assert_eq!(sched.block_of(pid(2)), [pid(2)].into());
        assert_eq!(sched.block_of(pid(0)), [pid(0), pid(1)].into());
    }

    #[test]
    fn partitioned_phase_delivers_only_intra_block() {
        let statuses = vec![Status::Alive { local_steps: 0 }; 3];
        let decided = vec![false; 3];
        let buffers: Vec<Buffer<u32>> = (0..3).map(|_| Buffer::new()).collect();
        let view = SimView {
            n: 3,
            time: Time::ZERO,
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        let mut sched = PartitionScheduler::new(
            vec![[pid(0), pid(1)].into(), [pid(2)].into()],
            ReleasePolicy::Never,
        );
        let c = Scheduler::next(&mut sched, &view).unwrap();
        assert_eq!(c.pid, pid(0));
        assert_eq!(c.delivery, Delivery::AllFrom([pid(0), pid(1)].into()));
    }

    #[test]
    fn never_release_stops_after_all_decided() {
        let statuses = vec![Status::Alive { local_steps: 1 }; 2];
        let decided = vec![true, true];
        let buffers: Vec<Buffer<u32>> = (0..2).map(|_| Buffer::new()).collect();
        let view = SimView {
            n: 2,
            time: Time::ZERO,
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        let mut sched = PartitionScheduler::new(vec![], ReleasePolicy::Never);
        assert!(Scheduler::next(&mut sched, &view).is_none());
    }

    #[test]
    fn release_drains_with_all_delivery() {
        let statuses = vec![Status::Alive { local_steps: 1 }; 2];
        let decided = vec![true, true];
        let buffers: Vec<Buffer<u32>> = (0..2).map(|_| Buffer::new()).collect();
        let view = SimView {
            n: 2,
            time: Time::ZERO,
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        let mut sched =
            PartitionScheduler::new(vec![], ReleasePolicy::AfterAllDecided).with_drain_rounds(1);
        let c1 = Scheduler::next(&mut sched, &view).unwrap();
        assert_eq!(c1.delivery, Delivery::All);
        let c2 = Scheduler::next(&mut sched, &view).unwrap();
        assert_eq!(c2.delivery, Delivery::All);
        assert!(
            Scheduler::next(&mut sched, &view).is_none(),
            "drain budget exhausted"
        );
    }
}
