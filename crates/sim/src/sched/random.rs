//! Reproducible random asynchrony.
//!
//! Picks a uniformly random alive process each step and delivers a random
//! subset of its pending messages. Seeded, hence fully reproducible — the
//! workhorse for randomized stress tests of the agreement algorithms.
//!
//! Fairness: pure uniform choice is fair in expectation but can starve a
//! process for long stretches; [`SeededRandom::with_fairness_window`]
//! optionally bounds starvation, which keeps runs admissible for the
//! partially-synchronous models (process synchrony bound Φ).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ids::ProcessId;
use crate::sched::{Choice, Delivery, Scheduler, SimView};

/// A seeded random scheduler.
#[derive(Debug, Clone)]
pub struct SeededRandom {
    rng: StdRng,
    /// Probability (in percent) that a pending message from a source is
    /// delivered this step.
    deliver_percent: u8,
    /// If set, no alive process goes more than this many global steps
    /// without stepping.
    fairness_window: Option<u64>,
    /// Steps since each process last stepped.
    since_step: Vec<u64>,
}

impl SeededRandom {
    /// Creates a random scheduler with the given seed and a 75% per-source
    /// delivery probability.
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            rng: StdRng::seed_from_u64(seed),
            deliver_percent: 75,
            fairness_window: None,
            since_step: Vec::new(),
        }
    }

    /// Sets the per-source delivery probability (0–100).
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    #[must_use]
    pub fn with_deliver_percent(mut self, percent: u8) -> Self {
        assert!(percent <= 100, "percentage out of range");
        self.deliver_percent = percent;
        self
    }

    /// Bounds starvation: any alive process steps at least once every
    /// `window` scheduler picks.
    #[must_use]
    pub fn with_fairness_window(mut self, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        self.fairness_window = Some(window);
        self
    }
}

impl<M> Scheduler<M> for SeededRandom {
    fn next(&mut self, view: &SimView<'_, M>) -> Option<Choice> {
        if self.since_step.len() != view.n {
            self.since_step = vec![0; view.n];
        }
        let alive: Vec<ProcessId> = view.alive().collect();
        if alive.is_empty() {
            return None;
        }
        // Fairness override: pick the most starved process if it breaches
        // the window.
        let pid = match self.fairness_window {
            Some(w) => {
                let starved = alive
                    .iter()
                    .copied()
                    .filter(|p| self.since_step[p.index()] >= w)
                    .max_by_key(|p| self.since_step[p.index()]);
                starved.unwrap_or_else(|| alive[self.rng.gen_range(0..alive.len())])
            }
            None => alive[self.rng.gen_range(0..alive.len())],
        };
        for p in &alive {
            self.since_step[p.index()] += 1;
        }
        self.since_step[pid.index()] = 0;

        // Randomized delivery: for each source with pending messages,
        // deliver a random prefix with the configured probability.
        let buf = &view.buffers[pid.index()];
        let mut per_source = Vec::new();
        for src in buf.sources() {
            if self.rng.gen_range(0..100u8) < self.deliver_percent {
                let pending = buf.pending_from(src);
                let count = self.rng.gen_range(1..=pending);
                per_source.push((src, count));
            }
        }
        let delivery = if per_source.is_empty() {
            Delivery::None
        } else {
            Delivery::OldestPerSource(per_source)
        };
        Some(Choice { pid, delivery })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::ids::Time;
    use crate::sched::Status;

    fn make_parts(n: usize) -> (Vec<Status>, Vec<bool>, Vec<Buffer<u32>>) {
        (
            vec![Status::Alive { local_steps: 0 }; n],
            vec![false; n],
            (0..n).map(|_| Buffer::new()).collect(),
        )
    }

    #[test]
    fn same_seed_same_schedule() {
        let (statuses, decided, buffers) = make_parts(4);
        let v = SimView {
            n: 4,
            time: Time::ZERO,
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        let picks = |seed: u64| -> Vec<usize> {
            let mut s = SeededRandom::new(seed);
            (0..20)
                .map(|_| Scheduler::next(&mut s, &v).unwrap().pid.index())
                .collect()
        };
        assert_eq!(picks(7), picks(7));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let (statuses, decided, buffers) = make_parts(4);
        let v = SimView {
            n: 4,
            time: Time::ZERO,
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        let picks = |seed: u64| -> Vec<usize> {
            let mut s = SeededRandom::new(seed);
            (0..20)
                .map(|_| Scheduler::next(&mut s, &v).unwrap().pid.index())
                .collect()
        };
        assert_ne!(picks(1), picks(2));
    }

    #[test]
    fn fairness_window_bounds_starvation() {
        let (statuses, decided, buffers) = make_parts(3);
        let v = SimView {
            n: 3,
            time: Time::ZERO,
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        let mut s = SeededRandom::new(42).with_fairness_window(5);
        let mut gaps = [0u64; 3];
        for _ in 0..300 {
            let pid = Scheduler::next(&mut s, &v).unwrap().pid;
            for g in gaps.iter_mut() {
                *g += 1;
            }
            assert!(
                gaps.iter().all(|g| *g <= 3 * 5 + 3),
                "starvation beyond window bound"
            );
            gaps[pid.index()] = 0;
        }
    }

    #[test]
    fn everyone_crashed_yields_none() {
        let statuses = vec![Status::Crashed { at: Time::ZERO }; 2];
        let decided = vec![false; 2];
        let buffers: Vec<Buffer<u32>> = (0..2).map(|_| Buffer::new()).collect();
        let v = SimView {
            n: 2,
            time: Time::ZERO,
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        let mut s = SeededRandom::new(0);
        assert!(Scheduler::next(&mut s, &v).is_none());
    }

    #[test]
    #[should_panic(expected = "percentage out of range")]
    fn rejects_bad_percentage() {
        let _ = SeededRandom::new(0).with_deliver_percent(101);
    }
}
