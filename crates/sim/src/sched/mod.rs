//! Schedulers: who steps next, and which messages it receives.
//!
//! In the paper's model the adversary controls scheduling and message
//! delivery (subject to the admissibility conditions of the model). A
//! [`Scheduler`] is exactly that adversary: at each point it inspects a
//! read-only [`SimView`] of the configuration and picks a [`Choice`] — the
//! next process to step and the [`Delivery`] it receives.
//!
//! Built-in schedulers:
//!
//! * [`RoundRobin`](crate::sched::round_robin::RoundRobin) — fair lock-step
//!   scheduling (synchronous processes, eager delivery);
//! * [`SeededRandom`](crate::sched::random::SeededRandom) — reproducible
//!   random asynchrony;
//! * [`PartitionScheduler`](crate::sched::partition::PartitionScheduler) —
//!   the partitioning adversary of the impossibility proofs: delays all
//!   cross-partition messages until every process has decided;
//! * [`Scripted`](crate::sched::scripted::Scripted) — replays a recorded
//!   schedule (the executable form of the run-pasting of Lemmas 11/12);
//! * [`DelayBounded`](crate::sched::delay_bounded::DelayBounded) — the
//!   laziest admissible adversary of the Δ-bounded (communication-
//!   synchronous) setting.

pub mod delay_bounded;
pub mod partition;
pub mod random;
pub mod round_robin;
pub mod scripted;

use crate::buffer::Buffer;
use crate::ids::{MsgId, ProcessId, ProcessSet, Time};

/// Which pending messages the stepping process receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver nothing (the model always allows an empty receive).
    None,
    /// Deliver every pending message.
    All,
    /// Deliver every pending message whose source is in the set.
    AllFrom(ProcessSet),
    /// Deliver the oldest `count` pending messages from each listed source.
    OldestPerSource(Vec<(ProcessId, usize)>),
    /// Deliver exactly the listed message ids (unknown ids are skipped).
    Ids(Vec<MsgId>),
}

/// A scheduling decision: step `pid`, delivering `delivery` to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Choice {
    /// The process to step.
    pub pid: ProcessId,
    /// The messages it receives in this step.
    pub delivery: Delivery,
}

impl Choice {
    /// A step of `pid` receiving every pending message.
    pub fn deliver_all(pid: ProcessId) -> Self {
        Choice {
            pid,
            delivery: Delivery::All,
        }
    }

    /// A step of `pid` receiving nothing.
    pub fn deliver_none(pid: ProcessId) -> Self {
        Choice {
            pid,
            delivery: Delivery::None,
        }
    }
}

/// Liveness status of a process as seen by schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Still taking steps; `local_steps` completed so far.
    Alive {
        /// Completed local steps.
        local_steps: u64,
    },
    /// Crashed at the given time (or initially dead at `Time::ZERO`).
    Crashed {
        /// Crash time.
        at: Time,
    },
}

impl Status {
    /// Whether the process can still take steps.
    pub fn is_alive(self) -> bool {
        matches!(self, Status::Alive { .. })
    }
}

/// Read-only view of the current configuration, handed to schedulers.
#[derive(Debug)]
pub struct SimView<'a, M> {
    /// System size `n`.
    pub n: usize,
    /// Current global time.
    pub time: Time,
    /// Per-process liveness.
    pub statuses: &'a [Status],
    /// Per-process "has decided" flags.
    pub decided: &'a [bool],
    /// Per-process pending-message buffers.
    pub buffers: &'a [Buffer<M>],
}

impl<'a, M> SimView<'a, M> {
    /// Whether `pid` can still take steps.
    pub fn is_alive(&self, pid: ProcessId) -> bool {
        self.statuses[pid.index()].is_alive()
    }

    /// Whether `pid` has decided.
    pub fn has_decided(&self, pid: ProcessId) -> bool {
        self.decided[pid.index()]
    }

    /// All alive processes, in id order.
    pub fn alive(&self) -> impl Iterator<Item = ProcessId> + '_ {
        ProcessId::all(self.n).filter(move |p| self.is_alive(*p))
    }

    /// All alive processes that have not yet decided, in id order.
    pub fn alive_undecided(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.alive().filter(move |p| !self.has_decided(*p))
    }

    /// Number of messages pending for `pid`.
    pub fn pending(&self, pid: ProcessId) -> usize {
        self.buffers[pid.index()].len()
    }
}

/// The adversary: picks the next step of the run.
///
/// Returning `None` ends the run (the scheduler has no further moves). The
/// engine never steps a crashed process; a scheduler that selects one gets
/// an error from [`crate::engine::Simulation::step`], so well-behaved
/// schedulers should consult [`SimView::is_alive`].
pub trait Scheduler<M> {
    /// Chooses the next step given the current configuration, or `None` to
    /// stop.
    fn next(&mut self, view: &SimView<'_, M>) -> Option<Choice>;
}

impl<M, F> Scheduler<M> for F
where
    F: FnMut(&SimView<'_, M>) -> Option<Choice>,
{
    fn next(&mut self, view: &SimView<'_, M>) -> Option<Choice> {
        self(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_liveness() {
        assert!(Status::Alive { local_steps: 0 }.is_alive());
        assert!(!Status::Crashed { at: Time::ZERO }.is_alive());
    }

    #[test]
    fn view_helpers() {
        let statuses = vec![
            Status::Alive { local_steps: 1 },
            Status::Crashed { at: Time::ZERO },
            Status::Alive { local_steps: 0 },
        ];
        let decided = vec![true, false, false];
        let buffers: Vec<Buffer<u32>> = vec![Buffer::new(), Buffer::new(), Buffer::new()];
        let view = SimView {
            n: 3,
            time: Time::new(4),
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        assert!(view.is_alive(ProcessId::new(0)));
        assert!(!view.is_alive(ProcessId::new(1)));
        assert_eq!(view.alive().count(), 2);
        let undecided: Vec<_> = view.alive_undecided().collect();
        assert_eq!(undecided, vec![ProcessId::new(2)]);
        assert_eq!(view.pending(ProcessId::new(0)), 0);
    }

    #[test]
    fn closure_is_a_scheduler() {
        let mut calls = 0;
        let mut sched = |view: &SimView<'_, u32>| {
            calls += 1;
            view.alive().next().map(Choice::deliver_all)
        };
        let statuses = vec![Status::Alive { local_steps: 0 }];
        let decided = vec![false];
        let buffers: Vec<Buffer<u32>> = vec![Buffer::new()];
        let view = SimView {
            n: 1,
            time: Time::ZERO,
            statuses: &statuses,
            decided: &decided,
            buffers: &buffers,
        };
        let choice = Scheduler::next(&mut sched, &view).unwrap();
        assert_eq!(choice.pid, ProcessId::new(0));
        assert_eq!(calls, 1);
    }
}
