//! Indistinguishability of runs (Definitions 2 and 3 of the paper).
//!
//! Two runs α, β are *indistinguishable until decision* for a process `p`
//! (`α ~ β` for `p`) if `p` goes through the same sequence of states in both
//! until it decides; `α D∼ β` when this holds for every `p ∈ D`. A set of
//! runs `R′` is *compatible* with `R` for `D` (`R′ ≼_D R`) if every `α ∈ R′`
//! has some `β ∈ R` with `α D∼ β`.
//!
//! The simulator compares *state fingerprints* recorded in traces. The
//! comparison is exact up to 64-bit hash collision, which is more than
//! enough for the constructive checks in this crate (we use
//! indistinguishability as a *verification oracle* on runs we constructed to
//! be indistinguishable, so a collision could only mask a bug, never create
//! a spurious impossibility).

use crate::ids::{ProcessId, ProcessSet};
use crate::trace::Trace;

/// How the per-process comparison turned out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewComparison {
    /// Same observation sequence until the decision point (both decided at
    /// the same local step with identical prior states).
    EqualUntilDecision,
    /// Neither view decided; the shorter observation sequence is a prefix
    /// of the longer. For finite prefixes of infinite runs this is the best
    /// verifiable approximation of Definition 2.
    UndecidedPrefix,
    /// The views diverge (different states, deliveries, or decision points).
    Divergent,
}

impl ViewComparison {
    /// Whether the comparison supports indistinguishability.
    pub fn is_indistinguishable(self) -> bool {
        !matches!(self, ViewComparison::Divergent)
    }
}

/// Compares the views of `pid` in two traces per Definition 2.
pub fn compare_views<V: Clone>(a: &Trace<V>, b: &Trace<V>, pid: ProcessId) -> ViewComparison {
    let va = a.process_view(pid);
    let vb = b.process_view(pid);
    match (va.decided_at_local_step, vb.decided_at_local_step) {
        (Some(ka), Some(kb)) => {
            if ka == kb && va.obs[..ka] == vb.obs[..kb] {
                ViewComparison::EqualUntilDecision
            } else {
                ViewComparison::Divergent
            }
        }
        (None, None) => {
            let k = va.obs.len().min(vb.obs.len());
            if va.obs[..k] == vb.obs[..k] {
                ViewComparison::UndecidedPrefix
            } else {
                ViewComparison::Divergent
            }
        }
        // One decided, the other did not: the undecided view must contain
        // the decided view's pre-decision sequence as a prefix — then the
        // undecided run simply has not reached the decision point yet — or
        // the decided view's sequence extends the undecided one.
        (Some(ka), None) => prefix_compare(&va.obs[..ka], &vb.obs),
        (None, Some(kb)) => prefix_compare(&vb.obs[..kb], &va.obs),
    }
}

fn prefix_compare<T: PartialEq>(decided: &[T], undecided: &[T]) -> ViewComparison {
    let k = decided.len().min(undecided.len());
    if decided[..k] == undecided[..k] {
        ViewComparison::UndecidedPrefix
    } else {
        ViewComparison::Divergent
    }
}

/// Definition 2: `α D∼ β` — indistinguishable (until decision) for every
/// process in `D`.
pub fn indistinguishable_for_set<V: Clone>(a: &Trace<V>, b: &Trace<V>, d: ProcessSet) -> bool {
    d.iter()
        .all(|p| compare_views(a, b, p).is_indistinguishable())
}

/// Strict variant: every process in `D` must compare as
/// [`ViewComparison::EqualUntilDecision`] (it decided in both runs and went
/// through identical states up to the decision).
pub fn equal_until_decision_for_set<V: Clone>(a: &Trace<V>, b: &Trace<V>, d: ProcessSet) -> bool {
    d.iter()
        .all(|p| compare_views(a, b, p) == ViewComparison::EqualUntilDecision)
}

/// Definition 3: `R′ ≼_D R` — every run of `runs_prime` has an
/// indistinguishable (for `D`) counterpart in `runs`.
pub fn compatible<V: Clone>(runs_prime: &[Trace<V>], runs: &[Trace<V>], d: ProcessSet) -> bool {
    runs_prime.iter().all(|alpha| {
        runs.iter()
            .any(|beta| indistinguishable_for_set(alpha, beta, d))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Time;
    use crate::trace::{StepRecord, TraceEvent};

    fn step(pid: usize, local: u64, state_fp: u64, decided: Option<u32>) -> TraceEvent<u32> {
        TraceEvent::Step(StepRecord {
            time: Time::new(local),
            pid: ProcessId::new(pid),
            local_step: local,
            delivered: vec![],
            fd_fp: None,
            state_fp,
            decided,
            sent: vec![],
        })
    }

    fn trace(events: Vec<TraceEvent<u32>>) -> Trace<u32> {
        let mut t = Trace::new(2);
        for e in events {
            t.push(e);
        }
        t
    }

    #[test]
    fn identical_decided_views_are_equal() {
        let a = trace(vec![step(0, 1, 10, None), step(0, 2, 20, Some(1))]);
        let b = trace(vec![step(0, 1, 10, None), step(0, 2, 20, Some(1))]);
        assert_eq!(
            compare_views(&a, &b, ProcessId::new(0)),
            ViewComparison::EqualUntilDecision
        );
    }

    #[test]
    fn post_decision_divergence_is_ignored() {
        // Same states until decision; different states afterwards.
        let a = trace(vec![step(0, 1, 10, Some(1)), step(0, 2, 77, None)]);
        let b = trace(vec![step(0, 1, 10, Some(1)), step(0, 2, 88, None)]);
        assert_eq!(
            compare_views(&a, &b, ProcessId::new(0)),
            ViewComparison::EqualUntilDecision
        );
    }

    #[test]
    fn different_pre_decision_states_diverge() {
        let a = trace(vec![step(0, 1, 10, None), step(0, 2, 20, Some(1))]);
        let b = trace(vec![step(0, 1, 11, None), step(0, 2, 20, Some(1))]);
        assert_eq!(
            compare_views(&a, &b, ProcessId::new(0)),
            ViewComparison::Divergent
        );
    }

    #[test]
    fn undecided_prefix_is_compatible() {
        let a = trace(vec![step(0, 1, 10, None)]);
        let b = trace(vec![step(0, 1, 10, None), step(0, 2, 20, None)]);
        assert_eq!(
            compare_views(&a, &b, ProcessId::new(0)),
            ViewComparison::UndecidedPrefix
        );
        assert!(compare_views(&a, &b, ProcessId::new(0)).is_indistinguishable());
    }

    #[test]
    fn decided_vs_undecided_prefix() {
        let decided = trace(vec![step(0, 1, 10, None), step(0, 2, 20, Some(3))]);
        let shorter = trace(vec![step(0, 1, 10, None)]);
        assert_eq!(
            compare_views(&decided, &shorter, ProcessId::new(0)),
            ViewComparison::UndecidedPrefix
        );
        let diverged = trace(vec![step(0, 1, 99, None)]);
        assert_eq!(
            compare_views(&decided, &diverged, ProcessId::new(0)),
            ViewComparison::Divergent
        );
    }

    #[test]
    fn set_indistinguishability_requires_all_members() {
        let a = trace(vec![step(0, 1, 10, Some(1)), step(1, 1, 50, Some(2))]);
        let b = trace(vec![step(0, 1, 10, Some(1)), step(1, 1, 51, Some(2))]);
        let only_p0: ProcessSet = [ProcessId::new(0)].into();
        let both: ProcessSet = [ProcessId::new(0), ProcessId::new(1)].into();
        assert!(indistinguishable_for_set(&a, &b, only_p0));
        assert!(!indistinguishable_for_set(&a, &b, both));
    }

    #[test]
    fn compatibility_quantifies_correctly() {
        let a1 = trace(vec![step(0, 1, 10, Some(1))]);
        let a2 = trace(vec![step(0, 1, 20, Some(2))]);
        let b1 = trace(vec![step(0, 1, 10, Some(1))]);
        let b2 = trace(vec![step(0, 1, 20, Some(2))]);
        let d: ProcessSet = [ProcessId::new(0)].into();
        assert!(compatible(&[a1.clone(), a2.clone()], &[b1.clone(), b2], d));
        assert!(!compatible(&[a1, a2], &[b1], d), "a2 has no counterpart");
    }

    #[test]
    fn empty_set_is_trivially_indistinguishable() {
        let a = trace(vec![step(0, 1, 1, None)]);
        let b = trace(vec![step(0, 1, 2, None)]);
        assert!(indistinguishable_for_set(&a, &b, ProcessSet::new()));
    }
}
