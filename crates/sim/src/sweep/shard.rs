//! Deterministic cell→shard assignment for multi-process sweeps.
//!
//! A [`ShardSpec`] names one shard of a fixed-size partition of a grid's
//! emitted index space. The assignment is **contiguous ranges**: shard `i`
//! of `j` owns cells `range(total)` = `[start, start + len)`, where the
//! first `total % j` shards own one extra cell. The assignment is a pure
//! function of `(shard_index, shard_count, total)`, so "shard 2 of 5 of
//! grid 42" denotes the same cell set on every host, and cell indices and
//! [`cell_seed`](super::cell_seed) values are *globally* stable regardless
//! of shard count — sharding renumbers nothing.
//!
//! # Examples
//!
//! ```
//! use kset_sim::sweep::ShardSpec;
//!
//! let spec: ShardSpec = "1/3".parse().unwrap();
//! assert_eq!(spec.range(10), 4..7); // shard 0 gets 4 cells, 1 and 2 get 3
//! let cells: Vec<u32> = (0..10).collect();
//! assert_eq!(spec.slice(&cells), &[4, 5, 6]);
//! assert!("3/3".parse::<ShardSpec>().is_err());
//! ```

use std::fmt;
use std::ops::Range;
use std::str::FromStr;

/// One shard of a `shard_count`-way partition of a grid.
///
/// Construct with [`ShardSpec::new`] (or parse the CLI form `"I/J"`); both
/// reject `shard_count == 0` and `shard_index >= shard_count` with a typed
/// [`ShardError`], so a held `ShardSpec` is always valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    shard_index: usize,
    shard_count: usize,
}

impl ShardSpec {
    /// The trivial partition: one shard owning the whole grid.
    pub const FULL: ShardSpec = ShardSpec {
        shard_index: 0,
        shard_count: 1,
    };

    /// Creates shard `shard_index` of `shard_count`.
    ///
    /// # Errors
    ///
    /// [`ShardError::ZeroShardCount`] if `shard_count == 0`, and
    /// [`ShardError::IndexOutOfRange`] if `shard_index >= shard_count`.
    pub const fn new(shard_index: usize, shard_count: usize) -> Result<Self, ShardError> {
        if shard_count == 0 {
            return Err(ShardError::ZeroShardCount);
        }
        if shard_index >= shard_count {
            return Err(ShardError::IndexOutOfRange {
                shard_index,
                shard_count,
            });
        }
        Ok(ShardSpec {
            shard_index,
            shard_count,
        })
    }

    /// This shard's position within the partition (`0..shard_count`).
    pub const fn shard_index(self) -> usize {
        self.shard_index
    }

    /// How many shards partition the grid.
    pub const fn shard_count(self) -> usize {
        self.shard_count
    }

    /// The contiguous range of cell indices this shard owns out of a grid
    /// of `total` cells.
    ///
    /// Cells split as evenly as possible: every shard owns
    /// `total / shard_count` cells and the first `total % shard_count`
    /// shards own one more. Over all shards of a partition the ranges are
    /// disjoint and their union is exactly `0..total`, whatever `total`
    /// (shards beyond a small grid simply own empty ranges).
    pub const fn range(self, total: usize) -> Range<usize> {
        let base = total / self.shard_count;
        let extra = total % self.shard_count;
        let bonus = if self.shard_index < extra { 1 } else { 0 };
        let start = self.shard_index * base
            + if self.shard_index < extra {
                self.shard_index
            } else {
                extra
            };
        start..start + base + bonus
    }

    /// The sub-slice of `cells` this shard owns — the shard-local view a
    /// sweep runner works through.
    ///
    /// Slicing never renumbers: a cell's global index is its position in
    /// the *full* list (`self.range(cells.len()).start + local_offset`),
    /// which is what [`GridCell::index`](super::GridCell::index) already
    /// records for grid-built cells.
    pub fn slice<C>(self, cells: &[C]) -> &[C] {
        &cells[self.range(cells.len())]
    }

    /// Whether this is the trivial 1-way partition ([`ShardSpec::FULL`]).
    pub const fn is_full(self) -> bool {
        self.shard_count == 1
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.shard_index, self.shard_count)
    }
}

impl FromStr for ShardSpec {
    type Err = ShardError;

    /// Parses the CLI form `"I/J"` (shard I of J, zero-based).
    fn from_str(s: &str) -> Result<Self, ShardError> {
        let Some((i, j)) = s.split_once('/') else {
            return Err(ShardError::Malformed(s.to_string()));
        };
        let parse = |t: &str| {
            t.parse::<usize>()
                .map_err(|_| ShardError::Malformed(s.to_string()))
        };
        ShardSpec::new(parse(i)?, parse(j)?)
    }
}

/// Why a [`ShardSpec`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A partition into zero shards covers nothing.
    ZeroShardCount,
    /// `shard_index` does not name a shard of the partition.
    IndexOutOfRange {
        /// The offending index.
        shard_index: usize,
        /// The partition size it must stay below.
        shard_count: usize,
    },
    /// The textual form was not `"I/J"` with two integers.
    Malformed(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ZeroShardCount => write!(f, "shard count must be at least 1"),
            ShardError::IndexOutOfRange {
                shard_index,
                shard_count,
            } => write!(
                f,
                "shard index {shard_index} out of range for {shard_count} shards"
            ),
            ShardError::Malformed(s) => {
                write!(f, "malformed shard spec {s:?} (expected \"I/J\")")
            }
        }
    }
}

impl std::error::Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ShardSpec::new(0, 1).is_ok());
        assert!(ShardSpec::new(4, 5).is_ok());
        assert_eq!(ShardSpec::new(0, 0), Err(ShardError::ZeroShardCount));
        assert_eq!(
            ShardSpec::new(5, 5),
            Err(ShardError::IndexOutOfRange {
                shard_index: 5,
                shard_count: 5
            })
        );
    }

    #[test]
    fn parse_round_trips_and_rejects() {
        let spec: ShardSpec = "2/5".parse().unwrap();
        assert_eq!((spec.shard_index(), spec.shard_count()), (2, 5));
        assert_eq!(spec.to_string().parse::<ShardSpec>().unwrap(), spec);
        for bad in ["", "2", "2/", "/5", "a/5", "2/b", "-1/5", "2/5/7"] {
            assert!(bad.parse::<ShardSpec>().is_err(), "{bad:?} must not parse");
        }
        assert!(matches!(
            "9/3".parse::<ShardSpec>(),
            Err(ShardError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn ranges_partition_exactly() {
        for total in 0..40usize {
            for count in 1..12usize {
                let mut covered = Vec::new();
                let mut prev_end = 0;
                for index in 0..count {
                    let r = ShardSpec::new(index, count).unwrap().range(total);
                    assert_eq!(r.start, prev_end, "contiguous: {index}/{count} of {total}");
                    prev_end = r.end;
                    covered.extend(r);
                }
                assert_eq!(covered, (0..total).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn load_is_balanced() {
        for total in 0..40usize {
            for count in 1..12usize {
                let sizes: Vec<usize> = (0..count)
                    .map(|i| ShardSpec::new(i, count).unwrap().range(total).len())
                    .collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "total={total} count={count}: {sizes:?}");
                assert_eq!(sizes.iter().sum::<usize>(), total);
            }
        }
    }

    #[test]
    fn full_shard_owns_everything() {
        assert!(ShardSpec::FULL.is_full());
        assert_eq!(ShardSpec::FULL.range(17), 0..17);
        let cells: Vec<u8> = (0..9).collect();
        assert_eq!(ShardSpec::FULL.slice(&cells), &cells[..]);
    }
}
