//! Bounded-memory streaming sweeps: results flow to a sink as cells
//! complete, instead of materializing the whole grid in a `Vec`.
//!
//! Two variants, both `std::mpsc` under `std::thread::scope` (no rayon):
//!
//! * [`sweep_streaming`] delivers `(index, result)` in **completion
//!   order**. Backpressure is the channel: at most `window + threads`
//!   results exist outside the sink at any instant.
//! * [`sweep_streaming_ordered`] restores **cell order** without holding
//!   the grid: a worker may only *start* cell `i` once fewer than `window`
//!   cells separate it from the next cell the sink expects, so at most
//!   `window` results exist outside the sink at any instant — the reorder
//!   stash can never grow past the in-flight window, however slow the
//!   straggler cell is.
//!
//! Peak memory of either variant is therefore bounded by the in-flight
//! window, not the grid size; a million-cell grid streams through a
//! `window`-sized buffer. With a deterministic worker,
//! [`sweep_streaming_ordered`] invokes the sink on exactly the sequence
//! `(i, sweep_seq(cells, worker)[i])` for `i = 0, 1, …` — the property the
//! shard files of [`record`](super::record) and the merge gate in CI rely
//! on.
//!
//! # The window contract
//!
//! The window is the explicit edge of the API:
//!
//! * `window == 0` is a **typed error** ([`StreamError::ZeroWindow`]) —
//!   a zero window could never deliver anything, so it is always a
//!   caller bug, reported before any thread spawns or any cell runs;
//! * `window >= cells.len()` is a **documented no-op bound**: the gate
//!   never blocks and the runner behaves exactly like an unwindowed
//!   parallel sweep — same results, same order, just nothing left for
//!   the window to limit. Both properties are pinned by tests.
//!
//! # Examples
//!
//! ```
//! use kset_sim::sweep::{sweep_seq, sweep_streaming_ordered};
//!
//! let cells: Vec<u64> = (0..100).collect();
//! let mut seen = Vec::new();
//! // Stream a 100-cell grid through an 8-result window.
//! sweep_streaming_ordered(&cells, 8, |_, &c| c * 3, |i, r| seen.push((i, r))).unwrap();
//! let seq = sweep_seq(&cells, |_, &c| c * 3);
//! assert!(seen.iter().map(|&(i, _)| i).eq(0..100));
//! assert!(seen.iter().map(|&(_, r)| r).eq(seq));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, PoisonError};
use std::thread;

/// Why a streaming sweep could not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The in-flight window is zero: nothing could ever be delivered.
    ZeroWindow,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::ZeroWindow => {
                write!(f, "streaming sweep needs a window of at least 1")
            }
        }
    }
}

impl std::error::Error for StreamError {}

fn worker_threads(cells: usize) -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(cells.max(1))
}

/// Streams `worker(i, &cells[i])` results to `sink` in **completion
/// order**, holding at most `window + threads` undelivered results.
///
/// The sink runs on the calling thread. Cell indices are the positions in
/// `cells` (pass a [`ShardSpec`](super::ShardSpec) slice and add
/// `range.start`, or read the global index off the cell itself as
/// [`GridCell`](super::GridCell) does, when sweeping a shard of a larger
/// grid). Every index in `0..cells.len()` is delivered exactly once; the
/// *order* is whatever the thread schedule produced, so use
/// [`sweep_streaming_ordered`] when the consumer needs cell order.
///
/// `window >= cells.len()` is a documented no-op bound: the channel never
/// fills (see the [module docs](self)).
///
/// # Errors
///
/// [`StreamError::ZeroWindow`] if `window == 0`, before any thread
/// spawns or any cell runs.
///
/// # Panics
///
/// Propagates panics from `worker`.
pub fn sweep_streaming<C, R>(
    cells: &[C],
    window: usize,
    worker: impl Fn(usize, &C) -> R + Sync,
    mut sink: impl FnMut(usize, R),
) -> Result<(), StreamError>
where
    C: Sync,
    R: Send,
{
    if window == 0 {
        return Err(StreamError::ZeroWindow);
    }
    let threads = worker_threads(cells.len());
    if threads <= 1 || cells.len() <= 1 {
        for (i, c) in cells.iter().enumerate() {
            sink(i, worker(i, c));
        }
        return Ok(());
    }
    let next = AtomicUsize::new(0);
    // A window beyond the grid buys nothing: clamp the channel bound so
    // `window >= cells.len()` is a true no-op (and absurd windows do not
    // ask the channel to reserve absurd capacity).
    let (tx, rx) = mpsc::sync_channel::<(usize, R)>(window.min(cells.len()));
    let (next, worker) = (&next, &worker);
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let r = worker(i, &cells[i]);
                if tx.send((i, r)).is_err() {
                    break; // receiver gone: the sink panicked; stop quietly
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            sink(i, r);
        }
    });
    Ok(())
}

/// Shuts the sweep down when the consumer stops consuming (normally or by
/// unwinding out of a panicking sink): raises the shutdown flag and wakes
/// every gate-blocked worker, so `thread::scope` can always join.
struct GateOpener<'a> {
    emitted: &'a Mutex<usize>,
    cvar: &'a Condvar,
    shutdown: &'a AtomicBool,
}

impl Drop for GateOpener<'_> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poison-proof: this drop runs while unwinding out of a panicking
        // sink, and a second panic here (on a poisoned lock) would abort
        // the process instead of propagating the sink's panic. The guarded
        // value is a plain counter, so a torn update cannot exist.
        *self.emitted.lock().unwrap_or_else(PoisonError::into_inner) = usize::MAX;
        self.cvar.notify_all();
    }
}

/// Streams `worker(i, &cells[i])` results to `sink` in **cell order**,
/// holding at most `window` undelivered results.
///
/// The order-restoring wrapper over the streaming runner: workers are
/// *gated*, not just buffered — cell `i` may only start once
/// `i < emitted + window` (where `emitted` counts sink deliveries) — so
/// the reorder stash plus the channel never exceed `window` results even
/// when cell `emitted` itself is the slowest of the grid. `window = 1`
/// degenerates to lock-step sequential delivery; larger windows trade
/// memory for parallel slack.
///
/// With a deterministic worker the sink observes exactly the sequence a
/// [`sweep_seq`](super::sweep_seq) pass would produce, which makes this
/// the runner of choice for writing shard result files: bytes on disk are
/// identical to a sequential sweep's, whatever the thread count.
///
/// `window >= cells.len()` is a documented no-op bound: the gate never
/// blocks, and the sweep equals the unwindowed parallel runner (see the
/// [module docs](self)).
///
/// # Errors
///
/// [`StreamError::ZeroWindow`] if `window == 0`, before any thread
/// spawns or any cell runs.
///
/// # Panics
///
/// Propagates panics from `worker`.
pub fn sweep_streaming_ordered<C, R>(
    cells: &[C],
    window: usize,
    worker: impl Fn(usize, &C) -> R + Sync,
    mut sink: impl FnMut(usize, R),
) -> Result<(), StreamError>
where
    C: Sync,
    R: Send,
{
    if window == 0 {
        return Err(StreamError::ZeroWindow);
    }
    // More workers than the window can never run: they would gate-block.
    let threads = worker_threads(cells.len()).min(window);
    if threads <= 1 || cells.len() <= 1 {
        for (i, c) in cells.iter().enumerate() {
            sink(i, worker(i, c));
        }
        return Ok(());
    }
    let next = AtomicUsize::new(0);
    let emitted = Mutex::new(0usize);
    let cvar = Condvar::new();
    let shutdown = AtomicBool::new(false);
    // Unbounded on purpose: the *gate* bounds how many results can exist
    // undelivered (≤ window), so the channel never holds more than that in
    // normal operation — while a send can never block, which is what lets
    // a panicking sink unwind without deadlocking senders.
    let (tx, rx) = mpsc::channel::<(usize, thread::Result<R>)>();
    let (next, emitted, cvar, shutdown, worker) = (&next, &emitted, &cvar, &shutdown, &worker);
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                {
                    // Gate: stay within `window` of the delivery frontier.
                    // Poison-proof (see GateOpener::drop): the counter has
                    // no multi-step invariant, so a poisoned lock still
                    // yields a usable frontier and the worker proceeds to
                    // the shutdown check instead of double-panicking.
                    let mut e = emitted.lock().unwrap_or_else(PoisonError::into_inner);
                    while i >= e.saturating_add(window) {
                        e = cvar.wait(e).unwrap_or_else(PoisonError::into_inner);
                    }
                }
                if shutdown.load(Ordering::SeqCst) {
                    break; // the consumer is gone; don't compute dead cells
                }
                // Catch worker panics and forward them through the channel:
                // the consumer re-raises, so a panicking cell fails the
                // sweep instead of deadlocking it (the consumer would
                // otherwise wait forever for this cell's result while the
                // other workers gate-block).
                let r =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker(i, &cells[i])));
                let failed = r.is_err();
                if tx.send((i, r)).is_err() || failed {
                    break;
                }
            });
        }
        drop(tx);
        let _opener = GateOpener {
            emitted,
            cvar,
            shutdown,
        };
        let mut stash: BTreeMap<usize, R> = BTreeMap::new();
        for expect in 0..cells.len() {
            let r = loop {
                if let Some(r) = stash.remove(&expect) {
                    break r;
                }
                // kset-lint: allow(panic-in-library): load-bearing liveness check; a closed channel here means workers died without even a panic payload, which the gate protocol makes unreachable
                let (i, r) = rx.recv().expect("workers ended before the grid completed");
                let r = r.unwrap_or_else(|panic| std::panic::resume_unwind(panic));
                if i == expect {
                    break r;
                }
                stash.insert(i, r);
            };
            sink(expect, r);
            *emitted.lock().unwrap_or_else(PoisonError::into_inner) += 1;
            cvar.notify_all();
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::{sweep_seq, GridCell};
    use super::*;

    #[test]
    fn completion_order_covers_every_cell_once() {
        let cells: Vec<u64> = (0..300).collect();
        let mut seen: Vec<Option<u64>> = vec![None; cells.len()];
        sweep_streaming(
            &cells,
            4,
            |i, &c| c + i as u64,
            |i, r| {
                assert!(seen[i].is_none(), "cell {i} delivered twice");
                seen[i] = Some(r);
            },
        )
        .unwrap();
        let expect = sweep_seq(&cells, |i, &c| c + i as u64);
        assert_eq!(
            seen.into_iter().map(Option::unwrap).collect::<Vec<_>>(),
            expect
        );
    }

    #[test]
    fn ordered_equals_sequential_in_order() {
        let cells: Vec<u64> = (0..257).rev().collect();
        let f = |i: usize, c: &u64| c.wrapping_mul(7).wrapping_add(i as u64);
        let mut got = Vec::new();
        sweep_streaming_ordered(&cells, 8, f, |i, r| {
            assert_eq!(i, got.len(), "sink must see cell order");
            got.push(r);
        })
        .unwrap();
        assert_eq!(got, sweep_seq(&cells, f));
    }

    #[test]
    fn ordered_bounds_outstanding_results_by_window() {
        // A grid much larger than the window, with a deliberately slow
        // straggler: the count of results produced but not yet delivered
        // must never exceed the window — i.e. peak memory is the window,
        // not the grid.
        const WINDOW: usize = 6;
        let cells: Vec<u64> = (0..500).collect();
        let produced = AtomicUsize::new(0);
        let delivered = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        sweep_streaming_ordered(
            &cells,
            WINDOW,
            |i, &c| {
                if i == 0 {
                    // Straggle: everything the gate allows piles up behind us.
                    thread::sleep(std::time::Duration::from_millis(30));
                }
                let outstanding =
                    produced.fetch_add(1, Ordering::SeqCst) + 1 - delivered.load(Ordering::SeqCst);
                peak.fetch_max(outstanding, Ordering::SeqCst);
                c
            },
            |_, _| {
                delivered.fetch_add(1, Ordering::SeqCst);
            },
        )
        .unwrap();
        assert_eq!(delivered.load(Ordering::SeqCst), cells.len());
        let peak = peak.load(Ordering::SeqCst);
        assert!(
            peak <= WINDOW,
            "outstanding results peaked at {peak}, window is {WINDOW}"
        );
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn ordered_worker_panic_propagates_instead_of_deadlocking() {
        // Regression: a panicking worker used to leave the consumer blocked
        // on recv() forever (its cell never arrives, the other senders stay
        // alive) while the remaining workers gate-blocked — a hang, not a
        // failure. The panic must propagate.
        let cells: Vec<u32> = (0..100).collect();
        sweep_streaming_ordered(
            &cells,
            4,
            |i, &c| {
                if i == 37 {
                    panic!("worker boom");
                }
                c
            },
            |_, _| {},
        )
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "sink boom")]
    fn ordered_sink_panic_propagates_instead_of_deadlocking() {
        // Regression: a panicking sink used to deadlock workers blocked on
        // a full bounded channel with no receiver draining it.
        let cells: Vec<u32> = (0..100).collect();
        sweep_streaming_ordered(
            &cells,
            4,
            |_, &c| c,
            |i, _| {
                if i == 10 {
                    panic!("sink boom");
                }
            },
        )
        .unwrap();
    }

    #[test]
    fn zero_window_is_a_typed_error_before_any_work() {
        // The window contract at the API boundary: window == 0 could never
        // deliver, so it errors before any thread spawns or worker runs —
        // on empty and non-empty grids alike.
        let cells: Vec<u32> = (0..10).collect();
        let worker_ran = AtomicUsize::new(0);
        let run = |f: &dyn Fn() -> Result<(), StreamError>| {
            let err = f().unwrap_err();
            assert_eq!(err, StreamError::ZeroWindow);
            assert_eq!(
                err.to_string(),
                "streaming sweep needs a window of at least 1"
            );
            assert_eq!(worker_ran.load(Ordering::SeqCst), 0, "no cell may run");
        };
        run(&|| {
            sweep_streaming(
                &cells,
                0,
                |_, &c| {
                    worker_ran.fetch_add(1, Ordering::SeqCst);
                    c
                },
                |_, _| {},
            )
        });
        run(&|| {
            sweep_streaming_ordered(
                &cells,
                0,
                |_, &c| {
                    worker_ran.fetch_add(1, Ordering::SeqCst);
                    c
                },
                |_, _| {},
            )
        });
        let empty: Vec<u32> = Vec::new();
        run(&|| sweep_streaming(&empty, 0, |_, &c| c, |_, _| {}));
        run(&|| sweep_streaming_ordered(&empty, 0, |_, &c| c, |_, _| {}));
    }

    #[test]
    fn oversized_windows_are_documented_no_ops() {
        // window >= cells.len(): the gate never blocks and the sweep is
        // exactly the unwindowed parallel run — same coverage, and (for
        // the ordered variant) the same sequential delivery order.
        let cells: Vec<u64> = (0..50).rev().collect();
        let f = |i: usize, c: &u64| c.wrapping_mul(11).wrapping_add(i as u64);
        let seq = sweep_seq(&cells, f);
        for window in [cells.len(), cells.len() + 1, 10 * cells.len(), usize::MAX] {
            let mut got = Vec::new();
            sweep_streaming_ordered(&cells, window, f, |i, r| {
                assert_eq!(i, got.len(), "window {window}: cell order holds");
                got.push(r);
            })
            .unwrap();
            assert_eq!(got, seq, "window {window}");

            let mut seen: Vec<Option<u64>> = vec![None; cells.len()];
            sweep_streaming(&cells, window, f, |i, r| {
                assert!(seen[i].is_none());
                seen[i] = Some(r);
            })
            .unwrap();
            assert_eq!(
                seen.into_iter().map(Option::unwrap).collect::<Vec<_>>(),
                seq
            );
        }
    }

    #[test]
    fn window_one_is_lock_step() {
        let cells: Vec<u32> = (0..40).collect();
        let mut got = Vec::new();
        sweep_streaming_ordered(&cells, 1, |_, &c| c, |i, r| got.push((i, r))).unwrap();
        assert_eq!(got, (0..40).map(|c| (c as usize, c)).collect::<Vec<_>>());
    }

    #[test]
    fn empty_grid_streams_nothing() {
        let cells: Vec<u32> = Vec::new();
        sweep_streaming(&cells, 3, |_, &c| c, |_, _| panic!("no cells to deliver")).unwrap();
        sweep_streaming_ordered(&cells, 3, |_, &c| c, |_, _| panic!("no cells to deliver"))
            .unwrap();
    }

    #[test]
    fn sharded_streaming_reassembles_to_sequential() {
        // The tentpole identity: shard the grid, stream each shard, and the
        // union of (global index, result) pairs is the sequential sweep.
        use super::super::ShardSpec;
        let grid: Vec<GridCell> =
            super::super::scale_grid(&[8, 16, 32], &[1, 2], &[1, 2], 11).expect("valid grid");
        let work = |cell: &GridCell| cell.seed.wrapping_mul(cell.n as u64 + cell.k as u64);
        let seq = sweep_seq(&grid, |_, c| work(c));
        for count in 1..=5 {
            let mut merged: Vec<Option<u64>> = vec![None; grid.len()];
            for index in 0..count {
                let spec = ShardSpec::new(index, count).unwrap();
                let slice = spec.slice(&grid);
                sweep_streaming_ordered(
                    slice,
                    4,
                    |_, c| work(c),
                    |local, r| {
                        let global = spec.range(grid.len()).start + local;
                        assert_eq!(global, slice[local].index, "GridCell keeps global index");
                        assert!(merged[global].is_none());
                        merged[global] = Some(r);
                    },
                )
                .unwrap();
            }
            let merged: Vec<u64> = merged.into_iter().map(Option::unwrap).collect();
            assert_eq!(
                merged, seq,
                "{count}-way shard must reassemble to sequential"
            );
        }
    }
}
