//! Shape-grouped batched sweeps: run same-shape cells as one computation.
//!
//! A sweep grid mixes cells of many shapes — system size, scheduled round
//! count — but a structure-of-arrays kernel (see
//! [`planes`](crate::ids::planes)) can only fuse cells whose per-round
//! buffers line up. [`sweep_batched`] is the generic driver for that
//! split: it groups cells by a caller-supplied *shape key*, cuts each
//! group into batches of at most `batch` lanes (the final batch of a
//! group may be ragged), hands every batch to the kernel, and scatters
//! the per-lane results back into **canonical cell order**.
//!
//! Nothing about a cell changes under batching — not its index, not its
//! [`cell_seed`](super::cell_seed), not its inputs — only the execution
//! schedule does. A deterministic kernel that matches the scalar worker
//! lane-for-lane therefore reproduces [`sweep_seq`](super::sweep_seq)'s
//! output *exactly*, which is what lets a batched sweep's rendered
//! `kset-sweep v2` record be byte-identical to the sequential reference.
//!
//! Degenerate grids are not an error: a grid where no two cells share a
//! shape simply yields single-lane batches — the driver is a no-op
//! reordering, not a failure (`--batch` on such a grid just runs the
//! kernel at B = 1).
//!
//! # Examples
//!
//! ```
//! use kset_sim::sweep::sweep_batched;
//!
//! // "Shape" = parity; the kernel doubles every lane.
//! let cells: Vec<u32> = vec![1, 2, 3, 4, 5];
//! let out = sweep_batched(
//!     &cells,
//!     2,
//!     |_, c| c % 2,
//!     |lanes| lanes.iter().map(|(_, c)| **c * 2).collect(),
//! );
//! assert_eq!(out, vec![2, 4, 6, 8, 10]);
//! ```

use std::collections::BTreeMap;

/// Runs `cells` through `run_batch` in shape-grouped batches of at most
/// `batch` lanes, returning results in cell order.
///
/// * `shape(index, cell)` — the grouping key: two cells may share a batch
///   iff their keys are equal. Keys are ordered (`BTreeMap`), so batch
///   composition is deterministic; **within** a group, cells keep their
///   emission order.
/// * `run_batch(lanes)` — the kernel; `lanes` is a non-empty slice of
///   `(index, &cell)` pairs, all of one shape, at most `batch` long. It
///   must return exactly one result per lane, in lane order.
///
/// The final batch of each group carries the group's remainder and may be
/// shorter than `batch` (ragged). Groups with a single cell produce
/// single-lane batches — degenerate grids are a documented fallback to
/// the scalar path, not an error.
///
/// # Panics
///
/// Panics if `batch` is zero or the kernel returns a result count that
/// differs from its lane count.
pub fn sweep_batched<C, K, R>(
    cells: &[C],
    batch: usize,
    shape: impl Fn(usize, &C) -> K,
    run_batch: impl Fn(&[(usize, &C)]) -> Vec<R>,
) -> Vec<R>
where
    K: Ord,
{
    assert!(batch >= 1, "batch size must be at least 1");
    let mut groups: BTreeMap<K, Vec<(usize, &C)>> = BTreeMap::new();
    for (i, c) in cells.iter().enumerate() {
        groups.entry(shape(i, c)).or_default().push((i, c));
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(cells.len());
    slots.resize_with(cells.len(), || None);
    for lanes in groups.values() {
        for chunk in lanes.chunks(batch) {
            let results = run_batch(chunk);
            assert_eq!(
                results.len(),
                chunk.len(),
                "batch kernel must return one result per lane"
            );
            for ((i, _), r) in chunk.iter().zip(results) {
                debug_assert!(slots[*i].is_none());
                slots[*i] = Some(r);
            }
        }
    }
    slots
        .into_iter()
        .enumerate()
        // kset-lint: allow(panic-in-library): deliberate loud hole-check — a reassembly gap must abort the sweep rather than silently permute records
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("cell {i} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn batched_results_keep_cell_order() {
        let cells: Vec<u32> = (0..23).rev().collect();
        let out = sweep_batched(
            &cells,
            4,
            |_, c| c % 3,
            |lanes| lanes.iter().map(|(i, c)| (*i as u32, **c)).collect(),
        );
        for (i, (idx, c)) in out.iter().enumerate() {
            assert_eq!(*idx as usize, i);
            assert_eq!(*c, cells[i]);
        }
    }

    #[test]
    fn groups_chunk_with_ragged_tail() {
        // 7 cells of one shape at batch 3 → chunks of 3, 3, 1; order
        // within the group is emission order.
        let cells = vec![10u32; 7];
        let chunks: RefCell<Vec<Vec<usize>>> = RefCell::new(Vec::new());
        sweep_batched(
            &cells,
            3,
            |_, _| 0u8,
            |lanes| {
                chunks
                    .borrow_mut()
                    .push(lanes.iter().map(|(i, _)| *i).collect());
                vec![(); lanes.len()]
            },
        );
        assert_eq!(
            *chunks.borrow(),
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]
        );
    }

    #[test]
    fn degenerate_grid_falls_back_to_single_lanes() {
        // Every cell has its own shape: batching degenerates to B = 1
        // batches in shape-key order, but results still come back in cell
        // order.
        let cells: Vec<u32> = vec![30, 10, 20];
        let sizes: RefCell<Vec<usize>> = RefCell::new(Vec::new());
        let out = sweep_batched(
            &cells,
            16,
            |_, c| *c,
            |lanes| {
                sizes.borrow_mut().push(lanes.len());
                lanes.iter().map(|(_, c)| **c + 1).collect()
            },
        );
        assert_eq!(out, vec![31, 11, 21]);
        assert_eq!(*sizes.borrow(), vec![1, 1, 1]);
    }

    #[test]
    fn batch_one_is_the_scalar_schedule() {
        let cells: Vec<u32> = (0..9).collect();
        let out = sweep_batched(
            &cells,
            1,
            |_, c| c % 2,
            |lanes| {
                assert_eq!(lanes.len(), 1);
                vec![*lanes[0].1 * 3]
            },
        );
        assert_eq!(out, (0..9).map(|c| c * 3).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_rejected() {
        sweep_batched(&[1u32], 0, |_, _| 0u8, |lanes| vec![(); lanes.len()]);
    }

    #[test]
    #[should_panic(expected = "one result per lane")]
    fn short_kernel_output_rejected() {
        sweep_batched(&[1u32, 2], 2, |_, _| 0u8, |_| Vec::<()>::new());
    }
}
