//! The plain-text shard result format (v1 and v2) and its coverage-checked
//! merge.
//!
//! Each shard of a sharded sweep writes a **self-describing, line-oriented
//! text file** (the workspace vendors no serde): a three-line header naming
//! the grid, its seed, its axes, the total cell count and the shard spec;
//! one `cell` line per swept cell carrying the cell's global index, its
//! `(n, f, k)` point, its [`cell_seed`], a decision digest and — from
//! format v2 — an optional typed [`Observation`] payload; and an
//! `end <count>` footer so truncated files are detectable.
//!
//! ```text
//! kset-sweep v2
//! grid border seed 42 axes theorem8-border cells 9
//! shard 1/3 range 3..6
//! cell 3 n 6 f 4 k 2 seed 0xc86a910a935dc447 digest 0x0011223344556677 obs distinct 0,3,7
//! cell 4 n 9 f 6 k 2 seed 0x... digest 0x... obs counts sends 81 dropped 12 delivers 54 fd 0 steps 0 rounds 3 crashes 6 decides 3 halts 1
//! cell 5 n 12 f 8 k 2 seed 0x... digest 0x...
//! end 3
//! ```
//!
//! **v1 compatibility.** v1 files (magic `kset-sweep v1`, no `obs` tails)
//! still parse — through the *same* parser, with identical semantics; the
//! parsed [`SweepHeader`] simply carries [`FormatVersion::V1`]. An `obs`
//! tail inside a v1 file is a typed error, never silently ignored.
//!
//! **Partial files.** A v2 file whose cell lines stop before the footer is
//! no longer garbage: [`PartialShardFile::parse`] accepts any prefix that
//! extends past the three header lines (a torn final line — a write cut
//! mid-line by a crash — is tolerated when nothing follows it; a cut
//! *inside* the header leaves nothing to resume and stays a typed error)
//! and derives **exactly which cells are still owed** from the header's
//! range and the validated record prefix. That is what makes sweeps resumable: `experiments sweep
//! --resume FILE` recomputes only [`PartialShardFile::owed`] and rewrites
//! the completed file, byte-identical to an uninterrupted sweep.
//!
//! [`ShardFile::parse`] validates everything re-derivable: the shard's
//! declared range must be [`ShardSpec::range`] of
//! the declared total, cell indices must walk that range exactly (so
//! duplicated, out-of-order, missing and foreign indices are all typed
//! errors), every seed must re-derive from `(grid_seed, index)`, and the
//! footer count must match. [`merge`] then reassembles a full grid from
//! per-shard files, verifying **exact coverage** — headers identical,
//! every shard of the partition present exactly once, every cell index
//! exactly once — before returning the canonical single-shard
//! ([`ShardSpec::FULL`]) file, whose rendering is byte-identical to what a
//! sequential single-process sweep of the full grid writes. That byte
//! identity is the CI conformance gate, and it holds for v2 files with
//! observation payloads exactly as it did for v1 digests.

use std::fmt;

use super::{cell_seed, GridCell, ShardError, ShardSpec};
use crate::observe::EventCounts;

/// The first line of every v1 shard file.
pub const FORMAT_MAGIC: &str = "kset-sweep v1";

/// The first line of every v2 shard file (typed observations, partial
/// files).
pub const FORMAT_MAGIC_V2: &str = "kset-sweep v2";

/// The shard-file format revision, carried by [`SweepHeader`] and decided
/// by the magic line.
///
/// v2 extends v1 in two ways: `cell` lines may carry a typed
/// [`Observation`] payload, and a file cut short mid-sweep is a valid
/// *partial* artifact ([`PartialShardFile`]) naming exactly the cells
/// still owed. Everything else — header grammar, index walking, seed
/// re-derivation, footer — is shared, and v1 files parse unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatVersion {
    /// `kset-sweep v1`: digest-only records, complete files only.
    V1,
    /// `kset-sweep v2`: optional typed observations, resumable partials.
    V2,
}

impl FormatVersion {
    /// The magic line of this version.
    pub const fn magic(self) -> &'static str {
        match self {
            FormatVersion::V1 => FORMAT_MAGIC,
            FormatVersion::V2 => FORMAT_MAGIC_V2,
        }
    }
}

/// A typed, plain-text observation payload attached to a v2 cell record —
/// what the cell's run *looked like*, not just a digest of it.
///
/// Three shapes, one per observation style the workspace produces:
///
/// * [`Observation::Decisions`] — the per-process decision vector
///   (`-` renders an undecided slot);
/// * [`Observation::Distinct`] — the distinct decision values, strictly
///   ascending (the quantity k-Agreement bounds);
/// * [`Observation::Counts`] — the [`EventCounts`] of an
///   [`EventCounter`](crate::observe::EventCounter) attached to the cell's
///   run through [`Engine::drive_observed`](crate::Engine::drive_observed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation {
    /// Per-process decisions, `None` = undecided.
    Decisions(Vec<Option<u64>>),
    /// Distinct decision values, strictly ascending.
    Distinct(Vec<u64>),
    /// Event totals of the cell's observed run.
    Counts(EventCounts),
}

impl Observation {
    /// Builds a [`Observation::Distinct`] from any value iterator,
    /// sorting and deduplicating so the rendering is canonical.
    pub fn distinct(values: impl IntoIterator<Item = u64>) -> Self {
        let mut v: Vec<u64> = values.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Observation::Distinct(v)
    }

    /// Renders the observation tail (the part after `obs `, no
    /// surrounding whitespace). List fields use the workspace's shared
    /// csv grammar (comma-separated, `-` when empty).
    pub fn render(&self) -> String {
        use crate::textfmt::render_csv as csv;
        match self {
            Observation::Decisions(ds) => {
                // An empty decision vector would render like one undecided
                // slot; systems have n ≥ 1 processes, so an empty vector
                // is a writer bug, not a runtime condition.
                assert!(!ds.is_empty(), "decision vectors cover n >= 1 processes");
                format!(
                    "decisions {}",
                    csv(ds.iter().map(|d| match d {
                        Some(v) => v.to_string(),
                        None => "-".to_string(),
                    }))
                )
            }
            Observation::Distinct(vs) => {
                format!("distinct {}", csv(vs.iter().map(u64::to_string)))
            }
            Observation::Counts(c) => format!(
                "counts sends {} dropped {} delivers {} fd {} steps {} rounds {} \
                 crashes {} decides {} halts {}",
                c.sends,
                c.dropped,
                c.delivers,
                c.fd_samples,
                c.steps,
                c.rounds,
                c.crashes,
                c.decides,
                c.halts
            ),
        }
    }

    /// Parses the observation tail tokens (everything after the `obs`
    /// keyword). `None` = malformed.
    fn parse_tokens(tokens: &[&str]) -> Option<Observation> {
        match tokens {
            ["decisions", csv] => {
                if *csv == "-" {
                    // A 1-process grid cell with an undecided process
                    // renders the same "-" as an empty vector would; the
                    // vector is never empty in practice (n ≥ 1), so "-"
                    // reads back as one undecided slot.
                    return Some(Observation::Decisions(vec![None]));
                }
                let out = crate::textfmt::parse_csv_with(csv, |tok| match tok {
                    "-" => Some(None),
                    _ => tok.parse().ok().map(Some),
                })?;
                Some(Observation::Decisions(out))
            }
            ["distinct", csv] => {
                let out: Vec<u64> = crate::textfmt::parse_csv_with(csv, |tok| tok.parse().ok())?;
                if out.windows(2).any(|w| w[0] >= w[1]) {
                    return None; // not strictly ascending: not canonical
                }
                Some(Observation::Distinct(out))
            }
            ["counts", "sends", sends, "dropped", dropped, "delivers", delivers, "fd", fd, "steps", steps, "rounds", rounds, "crashes", crashes, "decides", decides, "halts", halts] => {
                Some(Observation::Counts(EventCounts {
                    sends: sends.parse().ok()?,
                    dropped: dropped.parse().ok()?,
                    delivers: delivers.parse().ok()?,
                    fd_samples: fd.parse().ok()?,
                    steps: steps.parse().ok()?,
                    rounds: rounds.parse().ok()?,
                    crashes: crashes.parse().ok()?,
                    decides: decides.parse().ok()?,
                    halts: halts.parse().ok()?,
                }))
            }
            _ => None,
        }
    }
}

/// One swept cell: its grid coordinates, the digest of its outcome, and —
/// in v2 files — an optional typed [`Observation`].
///
/// `digest` is whatever 64-bit summary the sweep worker produced (the
/// experiments binary uses the release-stable
/// [`stable_fingerprint`](crate::stable_fingerprint) of the
/// cell's decision outcome); equality of digests across runs is the
/// determinism claim the shard-matrix CI gate checks. The observation is
/// *payload*, not checksum: it must be a deterministic function of the
/// cell (resume byte-identity depends on it) but takes no part in
/// coverage checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Global index of the cell in the full grid's emission order.
    pub index: usize,
    /// System size.
    pub n: usize,
    /// Failure budget of the cell.
    pub f: usize,
    /// Agreement degree.
    pub k: usize,
    /// The cell's deterministic seed, `cell_seed(grid_seed, index)`.
    pub seed: u64,
    /// 64-bit digest of the cell's decision outcome.
    pub digest: u64,
    /// Typed observation payload (v2 files only; `None` in v1 files and
    /// for cells swept without an observer).
    pub obs: Option<Observation>,
}

impl CellRecord {
    /// Pairs a grid cell with its decision digest (no observation).
    pub fn new(cell: &GridCell, digest: u64) -> Self {
        CellRecord {
            index: cell.index,
            n: cell.n,
            f: cell.f,
            k: cell.k,
            seed: cell.seed,
            digest,
            obs: None,
        }
    }

    /// Attaches a typed observation payload. Returns `self` for chaining.
    #[must_use]
    pub fn with_observation(mut self, obs: Observation) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Renders the `cell` line (no trailing newline).
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "cell {} n {} f {} k {} seed {:#018x} digest {:#018x}",
            self.index, self.n, self.f, self.k, self.seed, self.digest
        );
        if let Some(obs) = &self.obs {
            line.push_str(" obs ");
            line.push_str(&obs.render());
        }
        line
    }

    /// Parses one `cell` line (the inverse of [`CellRecord::render_line`])
    /// under the grammar of `version` — the single-record entry point the
    /// fleet protocol shares with the file parser, so a record on the wire
    /// and a record in a shard file can never drift apart.
    ///
    /// This validates the *line* only; contextual checks (index walking,
    /// seed re-derivation) belong to the caller, exactly as in
    /// [`ShardFile::parse`].
    pub fn parse_line(line: &str, version: FormatVersion) -> Result<CellRecord, CellLineError> {
        let t: Vec<&str> = line.split_whitespace().collect();
        let ["cell", index, "n", n, "f", f, "k", k, "seed", seed, "digest", digest, ref obs_tokens @ ..] =
            t[..]
        else {
            return Err(CellLineError::Malformed);
        };
        let obs = match obs_tokens {
            [] => None,
            ["obs", ..] if version == FormatVersion::V1 => {
                return Err(CellLineError::ObservationInV1);
            }
            ["obs", rest @ ..] => {
                Some(Observation::parse_tokens(rest).ok_or(CellLineError::Malformed)?)
            }
            _ => return Err(CellLineError::Malformed),
        };
        Ok(CellRecord {
            index: index.parse().map_err(|_| CellLineError::Malformed)?,
            n: n.parse().map_err(|_| CellLineError::Malformed)?,
            f: f.parse().map_err(|_| CellLineError::Malformed)?,
            k: k.parse().map_err(|_| CellLineError::Malformed)?,
            seed: parse_hex(seed).ok_or(CellLineError::Malformed)?,
            digest: parse_hex(digest).ok_or(CellLineError::Malformed)?,
            obs,
        })
    }
}

/// Why one `cell` line failed to parse (see [`CellRecord::parse_line`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellLineError {
    /// The line does not match the `cell` token grammar.
    Malformed,
    /// The line carries an `obs` tail under the v1 grammar, which has no
    /// observation syntax.
    ObservationInV1,
}

impl fmt::Display for CellLineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellLineError::Malformed => write!(f, "malformed cell line"),
            CellLineError::ObservationInV1 => {
                write!(f, "a {FORMAT_MAGIC:?} record cannot carry an obs tail")
            }
        }
    }
}

impl std::error::Error for CellLineError {}

/// The self-describing header of a shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepHeader {
    /// The format revision (decided by the magic line on parse).
    pub version: FormatVersion,
    /// Name of the grid (one whitespace-free token, e.g. `border`).
    pub grid: String,
    /// The grid seed every cell seed derives from.
    pub grid_seed: u64,
    /// Whitespace-free description of the grid's axes
    /// (e.g. `ns=64,128;fs=1,2;ks=1`): what the index space was built from.
    pub axes: String,
    /// Total number of cells in the **full** grid (not this shard).
    pub total: usize,
    /// Which shard of the grid this file holds.
    pub shard: ShardSpec,
}

impl SweepHeader {
    /// Builds a header for the current writer format
    /// ([`FormatVersion::V2`]), validating that `grid` and `axes` are
    /// single non-empty whitespace-free tokens (the format is
    /// token-delimited). Use [`SweepHeader::with_version`] to target v1.
    ///
    /// # Panics
    ///
    /// Panics on an empty or whitespace-containing `grid`/`axes` — those
    /// are writer bugs, not runtime conditions.
    pub fn new(
        grid: impl Into<String>,
        grid_seed: u64,
        axes: impl Into<String>,
        total: usize,
        shard: ShardSpec,
    ) -> Self {
        let (grid, axes) = (grid.into(), axes.into());
        for (name, value) in [("grid", &grid), ("axes", &axes)] {
            assert!(
                !value.is_empty() && !value.contains(char::is_whitespace),
                "{name} must be one non-empty whitespace-free token, got {value:?}"
            );
        }
        SweepHeader {
            version: FormatVersion::V2,
            grid,
            grid_seed,
            axes,
            total,
            shard,
        }
    }

    /// Retargets the header to another format version. Returns `self` for
    /// chaining.
    #[must_use]
    pub fn with_version(mut self, version: FormatVersion) -> Self {
        self.version = version;
        self
    }

    /// The contiguous range of global cell indices this shard owns.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.shard.range(self.total)
    }

    /// Renders the three header lines (with trailing newline).
    pub fn render(&self) -> String {
        let r = self.range();
        format!(
            "{}\ngrid {} seed {} axes {} cells {}\nshard {} range {}..{}\n",
            self.version.magic(),
            self.grid,
            self.grid_seed,
            self.axes,
            self.total,
            self.shard,
            r.start,
            r.end
        )
    }

    /// The header this file must agree with to merge with `other`:
    /// everything except the shard index (format versions may not mix —
    /// the merged rendering must be byte-deterministic, and a v1/v2 mix
    /// has no single faithful rendering).
    fn merge_key(&self) -> (FormatVersion, &str, u64, &str, usize, usize) {
        (
            self.version,
            &self.grid,
            self.grid_seed,
            &self.axes,
            self.total,
            self.shard.shard_count(),
        )
    }
}

/// Renders the `end <count>` footer line (with trailing newline). Shared
/// by [`ShardFile::render`] and streaming writers that append record
/// lines as cells complete.
pub fn render_footer(records: usize) -> String {
    format!("end {records}\n")
}

/// A parsed (or about-to-be-rendered) shard result file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFile {
    /// The self-describing header.
    pub header: SweepHeader,
    /// One record per owned cell, in global cell order.
    pub records: Vec<CellRecord>,
}

impl ShardFile {
    /// Renders the complete file: header, one line per record, footer.
    ///
    /// # Panics
    ///
    /// Panics if a v1 header is paired with observation-carrying records —
    /// v1 has no observation grammar, so that file could never re-parse;
    /// a writer producing it is buggy.
    pub fn render(&self) -> String {
        if self.header.version == FormatVersion::V1 {
            assert!(
                self.records.iter().all(|r| r.obs.is_none()),
                "v1 files cannot carry observations"
            );
        }
        let mut out = self.header.render();
        for record in &self.records {
            out.push_str(&record.render_line());
            out.push('\n');
        }
        out.push_str(&render_footer(self.records.len()));
        out
    }

    /// Parses and validates a **complete** shard file, v1 or v2 (the magic
    /// line decides; the parsed header records the version).
    ///
    /// Beyond the grammar, this checks every property re-derivable from
    /// the header alone: the declared range is the shard's
    /// [`range`](SweepHeader::range), record indices walk that range
    /// exactly (duplicates, gaps, reorderings and foreign indices all
    /// surface as [`ParseError::UnexpectedIndex`]), seeds re-derive via
    /// [`cell_seed`], observation tails appear only in v2 files
    /// ([`ParseError::ObservationInV1`]), the footer count matches, and
    /// nothing follows the footer. A file that parses is a complete,
    /// internally consistent shard; for the prefix of one, see
    /// [`PartialShardFile::parse`].
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let partial = PartialShardFile::parse_inner(text, false)?;
        debug_assert!(partial.is_complete(), "strict parsing rejects prefixes");
        Ok(ShardFile {
            header: partial.header,
            records: partial.records,
        })
    }
}

/// A validated **prefix** of a v2 shard file: everything swept before the
/// writer stopped — crash, kill, or clean completion — plus the derived
/// set of cells still owed.
///
/// The prefix carries the full self-describing header, so the partial
/// file alone determines the grid, the shard, and [`owed`](Self::owed) —
/// exactly the cells a `--resume` run must recompute. A complete file is
/// the degenerate partial with nothing owed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialShardFile {
    /// The self-describing header.
    pub header: SweepHeader,
    /// The validated record prefix, in global cell order from the start
    /// of the shard's range.
    pub records: Vec<CellRecord>,
}

impl PartialShardFile {
    /// Parses a possibly-incomplete v2 shard file (complete v1/v2 files
    /// also parse, as the degenerate partial with nothing owed).
    ///
    /// The prefix must extend past the three header lines — a file cut
    /// inside the header identifies no grid, no shard and no owed set,
    /// so there is nothing to resume and the cut stays a typed error
    /// ([`ParseError::Truncated`] / [`ParseError::BadMagic`] /
    /// [`ParseError::BadLine`], depending on where the knife fell).
    /// Past the header, the accepted endings in place of the strict
    /// `end <count>` footer are:
    ///
    /// * end of input after any number of complete cell lines — the
    ///   writer was killed between lines;
    /// * one torn final line with no trailing newline — the writer was
    ///   killed mid-write; the torn tail is discarded and its cell is
    ///   owed again.
    ///
    /// Everything *before* the cut is validated exactly as in
    /// [`ShardFile::parse`]: prefix indices walk the range from its
    /// start, seeds re-derive, observations are well-formed. A malformed
    /// line *followed by more input* is corruption, not truncation, and
    /// stays a typed error — as does a truncated **v1** file, which never
    /// promised resumability ([`ParseError::Truncated`]).
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        Self::parse_inner(text, true)
    }

    /// The contiguous range of cell indices this shard still owes: the
    /// tail of the header's range not covered by the record prefix.
    pub fn owed(&self) -> std::ops::Range<usize> {
        let range = self.header.range();
        range.start + self.records.len()..range.end
    }

    /// Whether the prefix already covers the whole shard (a complete
    /// file: nothing owed; the footer was present and correct).
    pub fn is_complete(&self) -> bool {
        self.owed().is_empty()
    }

    /// Reinterprets a complete partial as the [`ShardFile`] it is.
    ///
    /// # Panics
    ///
    /// Panics if cells are still owed — completing them first is the
    /// caller's job (that is what resuming *is*).
    pub fn into_complete(self) -> ShardFile {
        assert!(self.is_complete(), "cells still owed: {:?}", self.owed());
        ShardFile {
            header: self.header,
            records: self.records,
        }
    }

    fn parse_inner(text: &str, allow_partial: bool) -> Result<Self, ParseError> {
        let lines: Vec<&str> = text.lines().collect();
        let total_lines = lines.len();
        let torn_tail = !text.is_empty() && !text.ends_with('\n');
        let mut lines = lines.into_iter().enumerate();
        let mut next_line = |expect: &str| {
            lines
                .next()
                .ok_or_else(|| ParseError::Truncated {
                    expected: expect.to_string(),
                })
                .map(|(no, line)| (no + 1, line))
        };

        let (no, magic) = next_line("format magic")?;
        let version = match magic {
            m if m == FORMAT_MAGIC => FormatVersion::V1,
            m if m == FORMAT_MAGIC_V2 => FormatVersion::V2,
            _ => {
                return Err(ParseError::BadMagic {
                    line: no,
                    found: magic.to_string(),
                });
            }
        };
        // Partial reading applies to v2 only; a cut-short v1 file keeps
        // erroring exactly as before this format revision.
        let allow_partial = allow_partial && version == FormatVersion::V2;

        let (no, grid_line) = next_line("grid header")?;
        let t: Vec<&str> = grid_line.split_whitespace().collect();
        let [_, grid, _, seed, _, axes, _, cells] = t[..] else {
            return Err(ParseError::bad_line(no, grid_line));
        };
        if t[0] != "grid" || t[2] != "seed" || t[4] != "axes" || t[6] != "cells" {
            return Err(ParseError::bad_line(no, grid_line));
        }
        let grid_seed: u64 = seed
            .parse()
            .map_err(|_| ParseError::bad_line(no, grid_line))?;
        let total: usize = cells
            .parse()
            .map_err(|_| ParseError::bad_line(no, grid_line))?;

        let (no, shard_line) = next_line("shard header")?;
        let t: Vec<&str> = shard_line.split_whitespace().collect();
        let [_, spec, _, range] = t[..] else {
            return Err(ParseError::bad_line(no, shard_line));
        };
        if t[0] != "shard" || t[2] != "range" {
            return Err(ParseError::bad_line(no, shard_line));
        }
        let shard: ShardSpec = spec.parse().map_err(ParseError::BadShard)?;
        let (start, end) = range
            .split_once("..")
            .and_then(|(s, e)| Some((s.parse::<usize>().ok()?, e.parse::<usize>().ok()?)))
            .ok_or_else(|| ParseError::bad_line(no, shard_line))?;
        let header = SweepHeader::new(grid, grid_seed, axes, total, shard).with_version(version);
        let expected = header.range();
        if (start, end) != (expected.start, expected.end) {
            return Err(ParseError::RangeMismatch {
                declared: start..end,
                derived: expected,
            });
        }

        // The range length comes from an untrusted header: cap the
        // pre-allocation so a file claiming 10^12 cells errors out on its
        // first bad line instead of aborting on the reservation.
        let mut records = Vec::with_capacity(expected.len().min(4096));
        let mut walk = expected.clone();
        let declared = loop {
            let (no, line) = match lines.next() {
                Some((no, line)) => (no + 1, line),
                None if allow_partial => {
                    // Clean cut between lines: everything parsed so far is
                    // the valid prefix.
                    return Ok(PartialShardFile { header, records });
                }
                None => {
                    return Err(ParseError::Truncated {
                        expected: "cell record or footer".to_string(),
                    });
                }
            };
            // The writer emits whole `\n`-terminated lines, so text that
            // does not end in a newline ends in a *torn* line — and a torn
            // line must never be parsed: a digest cut mid-hex still reads
            // as valid hex and would resume into a corrupt record. Drop it
            // categorically; its cell is owed again.
            if allow_partial && torn_tail && no == total_lines {
                return Ok(PartialShardFile { header, records });
            }
            let t: Vec<&str> = line.split_whitespace().collect();
            match t[..] {
                ["end", count] => {
                    break count
                        .parse::<usize>()
                        .map_err(|_| ParseError::bad_line(no, line))?;
                }
                ["cell", ..] => {
                    let record = CellRecord::parse_line(line, version).map_err(|e| match e {
                        CellLineError::Malformed => ParseError::bad_line(no, line),
                        CellLineError::ObservationInV1 => ParseError::ObservationInV1 { line: no },
                    })?;
                    match walk.next() {
                        Some(expect) if expect == record.index => {}
                        expect => {
                            return Err(ParseError::UnexpectedIndex {
                                expected: expect,
                                found: record.index,
                            });
                        }
                    }
                    let derived = cell_seed(grid_seed, record.index);
                    if record.seed != derived {
                        return Err(ParseError::SeedMismatch {
                            index: record.index,
                            derived,
                            found: record.seed,
                        });
                    }
                    records.push(record);
                }
                _ => return Err(ParseError::bad_line(no, line)),
            }
        };
        if declared != records.len() {
            return Err(ParseError::CountMismatch {
                declared,
                actual: records.len(),
            });
        }
        if let Some(missing) = walk.next() {
            return Err(ParseError::UnexpectedIndex {
                expected: Some(missing),
                found: usize::MAX,
            });
        }
        if let Some((no, line)) = lines.find(|(_, l)| !l.trim().is_empty()) {
            return Err(ParseError::bad_line(no + 1, line));
        }
        Ok(PartialShardFile { header, records })
    }
}

fn parse_hex(token: &str) -> Option<u64> {
    let hex = token.strip_prefix("0x")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Why a shard file failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input ended before the grammar did — a truncated file.
    Truncated {
        /// What the parser was looking for when the input ran out.
        expected: String,
    },
    /// The first line is not [`FORMAT_MAGIC`].
    BadMagic {
        /// 1-based line number.
        line: usize,
        /// The line found instead.
        found: String,
    },
    /// A line did not match the token grammar.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        content: String,
    },
    /// The shard spec itself was invalid (e.g. `5/3`).
    BadShard(ShardError),
    /// The declared cell range is not what the shard spec derives to.
    RangeMismatch {
        /// The range the file claims.
        declared: std::ops::Range<usize>,
        /// The range `ShardSpec::range(total)` derives.
        derived: std::ops::Range<usize>,
    },
    /// Cell indices must walk the shard's range exactly; duplicated,
    /// out-of-order, missing and out-of-shard indices all land here.
    UnexpectedIndex {
        /// The next index the range walk expected (`None`: walk done).
        expected: Option<usize>,
        /// The index found (`usize::MAX` when a record is missing
        /// entirely).
        found: usize,
    },
    /// A record's seed does not re-derive from `(grid_seed, index)`.
    SeedMismatch {
        /// The record's cell index.
        index: usize,
        /// `cell_seed(grid_seed, index)`.
        derived: u64,
        /// The seed in the file.
        found: u64,
    },
    /// The `end` footer disagrees with the number of records present.
    CountMismatch {
        /// The count the footer declares.
        declared: usize,
        /// The records actually present.
        actual: usize,
    },
    /// A v1 file carries an `obs` observation tail — v1 has no
    /// observation grammar, so the tail is a version lie, not extra data
    /// to skip.
    ObservationInV1 {
        /// 1-based line number of the offending record.
        line: usize,
    },
}

impl ParseError {
    fn bad_line(line: usize, content: &str) -> Self {
        ParseError::BadLine {
            line,
            content: content.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { expected } => {
                write!(f, "truncated shard file: expected {expected}")
            }
            ParseError::BadMagic { line, found } => {
                write!(
                    f,
                    "line {line}: not a {FORMAT_MAGIC:?} file (found {found:?})"
                )
            }
            ParseError::BadLine { line, content } => {
                write!(f, "line {line}: malformed line {content:?}")
            }
            ParseError::BadShard(e) => write!(f, "invalid shard spec: {e}"),
            ParseError::RangeMismatch { declared, derived } => write!(
                f,
                "declared range {}..{} but the shard spec derives {}..{}",
                declared.start, declared.end, derived.start, derived.end
            ),
            ParseError::UnexpectedIndex { expected, found } => match expected {
                Some(e) if *found == usize::MAX => {
                    write!(f, "missing record for cell {e}")
                }
                Some(e) => write!(f, "expected cell {e}, found cell {found}"),
                None => write!(f, "cell {found} lies outside this shard's range"),
            },
            ParseError::SeedMismatch {
                index,
                derived,
                found,
            } => write!(
                f,
                "cell {index}: seed {found:#018x} does not re-derive \
                 (cell_seed gives {derived:#018x})"
            ),
            ParseError::CountMismatch { declared, actual } => {
                write!(f, "footer declares {declared} records, file has {actual}")
            }
            ParseError::ObservationInV1 { line } => {
                write!(
                    f,
                    "line {line}: a {FORMAT_MAGIC:?} file cannot carry an obs tail \
                     (observations are {FORMAT_MAGIC_V2:?})"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Merges per-shard result files back into the canonical full-grid file,
/// verifying exact coverage.
///
/// Requirements, each with a typed [`MergeError`]:
///
/// * every file describes the **same grid** — name, grid seed, axes,
///   total and shard count all equal (cross-grid mixes are rejected);
/// * the shard indices are exactly `0..shard_count`, each **exactly
///   once** (a withheld or doubled shard is rejected);
/// * the union of records covers every cell index **exactly once**, and
///   every seed re-derives from `(grid_seed, index)` (defense in depth —
///   [`ShardFile::parse`] already enforces both per file).
///
/// The result carries [`ShardSpec::FULL`] and records in cell order, so
/// `merge(shards)?.render()` is byte-identical to the file a sequential
/// single-process sweep of the whole grid writes.
pub fn merge(shards: &[ShardFile]) -> Result<ShardFile, MergeError> {
    use std::collections::{BTreeMap, BTreeSet};

    let Some(first) = shards.first() else {
        return Err(MergeError::NoShards);
    };
    let key = first.header.merge_key();
    let count = first.header.shard.shard_count();
    let total = first.header.total;
    // Header totals and shard counts come from *files*: never allocate
    // proportionally to them (a corrupt header claiming 10^12 cells must
    // produce a typed error, not an OOM abort), only to the actual input.
    let mut seen_shards: BTreeSet<usize> = BTreeSet::new();
    let mut slots: BTreeMap<usize, CellRecord> = BTreeMap::new();
    for file in shards {
        if file.header.merge_key() != key {
            return Err(MergeError::GridMismatch {
                expected: Box::new(first.header.clone()),
                found: Box::new(file.header.clone()),
            });
        }
        let index = file.header.shard.shard_index();
        if !seen_shards.insert(index) {
            return Err(MergeError::DuplicateShard { shard_index: index });
        }
        for record in &file.records {
            let derived = cell_seed(first.header.grid_seed, record.index);
            if record.seed != derived {
                return Err(MergeError::SeedMismatch {
                    index: record.index,
                    derived,
                    found: record.seed,
                });
            }
            if record.index >= total {
                return Err(MergeError::IndexOutOfRange {
                    index: record.index,
                    total,
                });
            }
            if slots.insert(record.index, record.clone()).is_some() {
                return Err(MergeError::DuplicateIndex {
                    index: record.index,
                });
            }
        }
    }
    // The first absent shard (or cell) lies within one position of the
    // number of *present* ones, so these scans are bounded by the input
    // size even when the claimed counts are absurd.
    if seen_shards.len() != count {
        let shard_index = (0..count)
            .find(|i| !seen_shards.contains(i))
            // kset-lint: allow(panic-in-library): pigeonhole — seen_shards.len() != count with all members below count guarantees a missing index
            .expect("fewer distinct shards than the count: one is missing");
        return Err(MergeError::MissingShard { shard_index });
    }
    if slots.len() != total {
        let index = (0..total)
            .find(|i| !slots.contains_key(i))
            // kset-lint: allow(panic-in-library): pigeonhole — slots.len() != total with all keys below total guarantees a missing index
            .expect("fewer distinct cells than the total: one is missing");
        return Err(MergeError::MissingIndex { index });
    }
    Ok(ShardFile {
        header: SweepHeader {
            shard: ShardSpec::FULL,
            ..first.header.clone()
        },
        // BTreeMap iteration is index order: exactly the sequential file.
        records: slots.into_values().collect(),
    })
}

/// Why a set of shard files does not merge into a full grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No input files.
    NoShards,
    /// Two files describe different grids (name, seed, axes, total or
    /// shard count differ) — a cross-grid mix.
    GridMismatch {
        /// The header of the first file, setting the expectation.
        expected: Box<SweepHeader>,
        /// The disagreeing header.
        found: Box<SweepHeader>,
    },
    /// The same shard index appeared twice.
    DuplicateShard {
        /// The doubled shard.
        shard_index: usize,
    },
    /// A shard of the partition was withheld.
    MissingShard {
        /// The absent shard.
        shard_index: usize,
    },
    /// Two records claim the same cell.
    DuplicateIndex {
        /// The doubled cell index.
        index: usize,
    },
    /// A cell of the grid has no record.
    MissingIndex {
        /// The uncovered cell index.
        index: usize,
    },
    /// A record's index lies outside the grid.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The grid's cell count.
        total: usize,
    },
    /// A record's seed does not re-derive from `(grid_seed, index)`.
    SeedMismatch {
        /// The record's cell index.
        index: usize,
        /// `cell_seed(grid_seed, index)`.
        derived: u64,
        /// The seed in the file.
        found: u64,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shard files to merge"),
            MergeError::GridMismatch { expected, found } => write!(
                f,
                "cross-grid mix: expected grid {} seed {} axes {} cells {} ({} shards), \
                 found grid {} seed {} axes {} cells {} ({} shards)",
                expected.grid,
                expected.grid_seed,
                expected.axes,
                expected.total,
                expected.shard.shard_count(),
                found.grid,
                found.grid_seed,
                found.axes,
                found.total,
                found.shard.shard_count(),
            ),
            MergeError::DuplicateShard { shard_index } => {
                write!(f, "shard {shard_index} appears more than once")
            }
            MergeError::MissingShard { shard_index } => {
                write!(f, "shard {shard_index} is missing from the merge set")
            }
            MergeError::DuplicateIndex { index } => {
                write!(f, "cell {index} is covered by two records")
            }
            MergeError::MissingIndex { index } => {
                write!(f, "cell {index} is covered by no record")
            }
            MergeError::IndexOutOfRange { index, total } => {
                write!(f, "cell {index} lies outside the {total}-cell grid")
            }
            MergeError::SeedMismatch {
                index,
                derived,
                found,
            } => write!(
                f,
                "cell {index}: seed {found:#018x} does not re-derive \
                 (cell_seed gives {derived:#018x})"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic grid of `total` cells with digests derived from seeds.
    fn shard_file(grid: &str, grid_seed: u64, total: usize, spec: ShardSpec) -> ShardFile {
        let header = SweepHeader::new(grid, grid_seed, "ns=4;fs=1;ks=1", total, spec);
        let records = header
            .range()
            .map(|index| CellRecord {
                index,
                n: 4,
                f: 1,
                k: 1,
                seed: cell_seed(grid_seed, index),
                digest: cell_seed(grid_seed, index).rotate_left(7),
                obs: None,
            })
            .collect();
        ShardFile { header, records }
    }

    #[test]
    fn round_trip_is_identity() {
        for (index, count) in [(0, 1), (0, 3), (1, 3), (2, 3)] {
            let file = shard_file("demo", 42, 10, ShardSpec::new(index, count).unwrap());
            let parsed = ShardFile::parse(&file.render()).expect("rendered files parse");
            assert_eq!(parsed, file);
            assert_eq!(parsed.render(), file.render());
        }
    }

    #[test]
    fn parse_rejects_truncation() {
        let full = shard_file("demo", 42, 10, ShardSpec::FULL).render();
        // Drop the footer line.
        let truncated = full.trim_end_matches('\n').rsplit_once('\n').unwrap().0;
        assert!(matches!(
            ShardFile::parse(truncated),
            Err(ParseError::Truncated { .. })
        ));
        // Drop everything after the header.
        let header_only: String = full.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            ShardFile::parse(&header_only),
            Err(ParseError::Truncated { .. })
        ));
        assert!(matches!(
            ShardFile::parse(""),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn parse_rejects_duplicate_and_reordered_indices() {
        let file = shard_file("demo", 42, 6, ShardSpec::FULL);
        let mut dup = file.clone();
        dup.records[3] = dup.records[2].clone();
        assert_eq!(
            ShardFile::parse(&dup.render()),
            Err(ParseError::UnexpectedIndex {
                expected: Some(3),
                found: 2
            })
        );
        let mut swapped = file.clone();
        swapped.records.swap(1, 2);
        assert!(matches!(
            ShardFile::parse(&swapped.render()),
            Err(ParseError::UnexpectedIndex { .. })
        ));
    }

    #[test]
    fn parse_rejects_seed_mismatch() {
        let mut file = shard_file("demo", 42, 6, ShardSpec::FULL);
        file.records[4].seed ^= 1;
        assert!(matches!(
            ShardFile::parse(&file.render()),
            Err(ParseError::SeedMismatch { index: 4, .. })
        ));
    }

    #[test]
    fn parse_rejects_footer_count_mismatch_and_trailing_garbage() {
        let good = shard_file("demo", 42, 4, ShardSpec::FULL).render();
        let lying = good.replace("end 4", "end 3");
        assert_eq!(
            ShardFile::parse(&lying),
            Err(ParseError::CountMismatch {
                declared: 3,
                actual: 4
            })
        );
        let trailing = format!("{good}cell 9 n 4 f 1 k 1 seed 0x0 digest 0x0\n");
        assert!(matches!(
            ShardFile::parse(&trailing),
            Err(ParseError::BadLine { .. })
        ));
    }

    #[test]
    fn parse_rejects_foreign_range_and_bad_shard() {
        let good = shard_file("demo", 42, 10, ShardSpec::new(1, 3).unwrap()).render();
        // Claim a range the spec does not derive.
        let skewed = good.replace("range 4..7", "range 3..7");
        assert!(matches!(
            ShardFile::parse(&skewed),
            Err(ParseError::RangeMismatch { .. })
        ));
        let invalid = good.replace("shard 1/3", "shard 7/3");
        assert!(matches!(
            ShardFile::parse(&invalid),
            Err(ParseError::BadShard(_))
        ));
    }

    #[test]
    fn merge_reassembles_any_partition() {
        let seq = shard_file("demo", 42, 11, ShardSpec::FULL);
        for count in 1..=5 {
            let shards: Vec<ShardFile> = (0..count)
                .map(|i| shard_file("demo", 42, 11, ShardSpec::new(i, count).unwrap()))
                .collect();
            // Merge in reverse order too: input order must not matter.
            let merged = merge(&shards).expect("full partition merges");
            assert_eq!(merged, seq);
            let reversed: Vec<ShardFile> = shards.into_iter().rev().collect();
            assert_eq!(merge(&reversed).unwrap().render(), seq.render());
        }
    }

    #[test]
    fn merge_rejects_withheld_doubled_and_mixed_shards() {
        let make = |i| shard_file("demo", 42, 11, ShardSpec::new(i, 3).unwrap());
        assert_eq!(
            merge(&[make(0), make(2)]),
            Err(MergeError::MissingShard { shard_index: 1 })
        );
        assert_eq!(
            merge(&[make(0), make(1), make(1)]),
            Err(MergeError::DuplicateShard { shard_index: 1 })
        );
        assert_eq!(merge(&[]), Err(MergeError::NoShards));
        // Cross-grid mixes: different seed, and different grid name.
        let other_seed = shard_file("demo", 43, 11, ShardSpec::new(1, 3).unwrap());
        assert!(matches!(
            merge(&[make(0), other_seed, make(2)]),
            Err(MergeError::GridMismatch { .. })
        ));
        let other_grid = shard_file("border", 42, 11, ShardSpec::new(1, 3).unwrap());
        assert!(matches!(
            merge(&[make(0), other_grid, make(2)]),
            Err(MergeError::GridMismatch { .. })
        ));
    }

    #[test]
    fn hostile_claimed_totals_error_instead_of_allocating() {
        // Header totals and shard counts are untrusted input: a file
        // claiming ~2^64 cells must produce a typed error, not a capacity
        // panic or an OOM abort (these tests pass *by terminating*).
        let range = ShardSpec::new(0, 3).unwrap().range(usize::MAX);
        let text = format!(
            "{FORMAT_MAGIC}\n\
             grid demo seed 42 axes a cells {}\n\
             shard 0/3 range {}..{}\n\
             cell 0 n 4 f 1 k 1 seed {:#018x} digest 0x0\n\
             end 1\n",
            usize::MAX,
            range.start,
            range.end,
            cell_seed(42, 0),
        );
        assert!(matches!(
            ShardFile::parse(&text),
            Err(ParseError::UnexpectedIndex { .. })
        ));

        // Merge side: a programmatic file claiming an absurd grid total …
        let huge_total = ShardFile {
            header: SweepHeader::new("demo", 42, "a", usize::MAX, ShardSpec::FULL),
            records: vec![CellRecord {
                index: 0,
                n: 4,
                f: 1,
                k: 1,
                seed: cell_seed(42, 0),
                digest: 0,
                obs: None,
            }],
        };
        assert_eq!(
            merge(&[huge_total]),
            Err(MergeError::MissingIndex { index: 1 })
        );
        // … or an absurd shard count.
        let huge_count = ShardFile {
            header: SweepHeader::new("demo", 42, "a", 1, ShardSpec::new(0, usize::MAX).unwrap()),
            records: vec![CellRecord {
                index: 0,
                n: 4,
                f: 1,
                k: 1,
                seed: cell_seed(42, 0),
                digest: 0,
                obs: None,
            }],
        };
        assert_eq!(
            merge(&[huge_count]),
            Err(MergeError::MissingShard { shard_index: 1 })
        );
    }

    /// The v2 sibling of `shard_file`: every third cell carries a counts
    /// observation, every fifth a distinct-set, to exercise the obs
    /// grammar.
    fn shard_file_v2(grid: &str, grid_seed: u64, total: usize, spec: ShardSpec) -> ShardFile {
        let mut file = shard_file(grid, grid_seed, total, spec);
        for record in &mut file.records {
            record.obs = match record.index % 5 {
                0 => Some(Observation::Counts(EventCounts {
                    sends: record.index as u64 * 3,
                    dropped: 1,
                    delivers: record.index as u64 * 2,
                    fd_samples: 0,
                    steps: 9,
                    rounds: 0,
                    crashes: 1,
                    decides: 3,
                    halts: 1,
                })),
                1 => Some(Observation::distinct([record.index as u64, 2, 2, 1])),
                2 => Some(Observation::Decisions(vec![
                    Some(7),
                    None,
                    Some(record.index as u64),
                ])),
                3 => Some(Observation::Distinct(Vec::new())),
                _ => None,
            };
        }
        file
    }

    #[test]
    fn v2_round_trip_with_observations_is_identity() {
        for (index, count) in [(0, 1), (0, 3), (1, 3), (2, 3)] {
            let file = shard_file_v2("demo", 42, 10, ShardSpec::new(index, count).unwrap());
            assert_eq!(file.header.version, FormatVersion::V2);
            let parsed = ShardFile::parse(&file.render()).expect("rendered v2 files parse");
            assert_eq!(parsed, file);
            assert_eq!(parsed.render(), file.render());
        }
    }

    #[test]
    fn v1_files_parse_with_identical_semantics() {
        let v2 = shard_file("demo", 42, 10, ShardSpec::FULL);
        let v1 = ShardFile {
            header: v2.header.clone().with_version(FormatVersion::V1),
            records: v2.records.clone(),
        };
        let parsed = ShardFile::parse(&v1.render()).expect("v1 files still parse");
        assert_eq!(parsed.header.version, FormatVersion::V1);
        assert_eq!(parsed.records, v2.records, "same records, either magic");
        assert_eq!(parsed.render(), v1.render());
    }

    #[test]
    fn v1_rejects_observation_tails() {
        let mut file = shard_file("demo", 42, 4, ShardSpec::FULL);
        file.records[2].obs = Some(Observation::distinct([1, 2]));
        let text = ShardFile {
            header: file.header.clone().with_version(FormatVersion::V1),
            records: file.records.clone(),
        };
        // Rendering such a file is a writer bug …
        let rendered = std::panic::catch_unwind(|| text.render());
        assert!(rendered.is_err(), "v1 render with obs must panic");
        // … and parsing one (hand-forged) is a typed error.
        let forged = shard_file("demo", 42, 4, ShardSpec::FULL)
            .render()
            .replace(FORMAT_MAGIC_V2, FORMAT_MAGIC)
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 4 {
                    format!("{l} obs distinct 1,2")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        assert_eq!(
            ShardFile::parse(&forged),
            Err(ParseError::ObservationInV1 { line: 5 })
        );
    }

    #[test]
    fn malformed_observation_tails_are_rejected() {
        let good = shard_file_v2("demo", 42, 10, ShardSpec::FULL).render();
        for (from, to) in [
            ("obs distinct 1,2", "obs distinct 2,1"),  // not ascending
            ("obs distinct 1,2", "obs distinct 1,,2"), // empty token
            ("obs counts sends", "obs counts snds"),   // bad keyword
            ("obs decisions", "obs decision"),         // bad kind
        ] {
            let bad = good.replace(from, to);
            assert_ne!(bad, good, "replacement {from:?} must apply");
            assert!(
                matches!(ShardFile::parse(&bad), Err(ParseError::BadLine { .. })),
                "{to:?} must be rejected"
            );
        }
    }

    #[test]
    fn partial_parse_accepts_any_clean_prefix_and_names_owed_cells() {
        let file = shard_file_v2("demo", 42, 10, ShardSpec::new(1, 3).unwrap());
        let full = file.render();
        let range = file.header.range(); // 4..7
        for kept in 0..range.len() {
            // Header (3 lines) + `kept` cell lines, each newline-complete.
            let prefix: String = full
                .lines()
                .take(3 + kept)
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
            let partial = PartialShardFile::parse(&prefix).expect("clean prefixes parse");
            assert_eq!(partial.records.len(), kept);
            assert_eq!(partial.records[..], file.records[..kept]);
            assert_eq!(partial.owed(), range.start + kept..range.end);
            assert!(!partial.is_complete());
        }
        // All cells but no footer yet: nothing is owed — the resume pass
        // just rewrites the file with its footer.
        let all_cells: String =
            full.lines()
                .take(3 + range.len())
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
        let footerless = PartialShardFile::parse(&all_cells).expect("footer-less prefix parses");
        assert!(footerless.is_complete());
        // The complete file is the degenerate partial with nothing owed.
        let complete = PartialShardFile::parse(&full).expect("complete files parse");
        assert!(complete.is_complete());
        assert_eq!(complete.owed(), range.end..range.end);
        assert_eq!(complete.into_complete(), file);
    }

    #[test]
    fn partial_parse_drops_torn_final_lines() {
        let file = shard_file_v2("demo", 42, 10, ShardSpec::FULL);
        let full = file.render();
        // Cut mid-way through the third cell line — including cuts that
        // leave a grammatically parseable (but value-truncated) digest.
        let third_line_end: usize = full.lines().take(6).map(|l| l.len() + 1).sum();
        for cut_back in [1, 3, 9, 17] {
            let torn = &full[..third_line_end - cut_back];
            assert!(!torn.ends_with('\n'));
            let partial = PartialShardFile::parse(torn).expect("torn tails are dropped");
            assert_eq!(
                partial.records.len(),
                2,
                "cut_back {cut_back}: the torn third record is owed again"
            );
            assert_eq!(partial.owed(), 2..10);
        }
    }

    #[test]
    fn partial_parse_rejects_cuts_inside_the_header() {
        // A file cut inside its 3-line header identifies no grid and no
        // owed set — nothing to resume, so every header cut is a typed
        // error, not an empty partial.
        let full = shard_file_v2("demo", 42, 10, ShardSpec::FULL).render();
        let header_end: usize = full.lines().take(3).map(|l| l.len() + 1).sum();
        // (Cutting exactly the header's final newline is the one benign
        // header cut: the shard line is complete and must re-derive the
        // declared range byte-exactly, so it parses as an empty partial.)
        assert!(PartialShardFile::parse(&full[..header_end - 1]).is_ok());
        for cut in [0, 5, 14, header_end / 2, header_end - 2] {
            let err =
                PartialShardFile::parse(&full[..cut]).expect_err("header cuts cannot be resumed");
            assert!(
                matches!(
                    err,
                    ParseError::Truncated { .. }
                        | ParseError::BadMagic { .. }
                        | ParseError::BadLine { .. }
                        | ParseError::RangeMismatch { .. }
                ),
                "cut at byte {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn partial_parse_still_rejects_mid_file_corruption() {
        let file = shard_file_v2("demo", 42, 10, ShardSpec::FULL);
        let full = file.render();
        // A malformed line *followed by more input* is corruption.
        let corrupt = full.replacen("digest", "digset", 1);
        assert!(matches!(
            PartialShardFile::parse(&corrupt),
            Err(ParseError::BadLine { .. })
        ));
        // Seed lies stay fatal even in the last complete line.
        let mut seed_lie = file.clone();
        seed_lie.records[9].seed ^= 1;
        assert!(matches!(
            PartialShardFile::parse(&seed_lie.render()),
            Err(ParseError::SeedMismatch { index: 9, .. })
        ));
        // A lying footer is fatal: the file *claims* completeness.
        let lying = full.replace("end 10", "end 9");
        assert!(matches!(
            PartialShardFile::parse(&lying),
            Err(ParseError::CountMismatch { .. })
        ));
        // Truncated v1 files never became resumable.
        let v1 = ShardFile {
            header: file.header.clone().with_version(FormatVersion::V1),
            records: file
                .records
                .iter()
                .map(|r| CellRecord {
                    obs: None,
                    ..r.clone()
                })
                .collect(),
        };
        let v1_text = v1.render();
        let v1_prefix: String = v1_text.lines().take(5).fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
        assert!(matches!(
            PartialShardFile::parse(&v1_prefix),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn merge_rejects_mixed_format_versions() {
        let a = shard_file("demo", 42, 10, ShardSpec::new(0, 2).unwrap());
        let b = shard_file("demo", 42, 10, ShardSpec::new(1, 2).unwrap());
        let b_v1 = ShardFile {
            header: b.header.clone().with_version(FormatVersion::V1),
            records: b.records.clone(),
        };
        assert!(matches!(
            merge(&[a.clone(), b_v1]),
            Err(MergeError::GridMismatch { .. })
        ));
        assert!(merge(&[a, b]).is_ok());
    }

    #[test]
    fn merged_v2_render_with_observations_is_byte_identical_to_sequential() {
        let seq = shard_file_v2("demo", 7, 23, ShardSpec::FULL).render();
        let shards: Vec<ShardFile> = (0..3)
            .map(|i| shard_file_v2("demo", 7, 23, ShardSpec::new(i, 3).unwrap()))
            .collect();
        assert_eq!(merge(&shards).unwrap().render(), seq);
    }

    #[test]
    fn merged_render_is_byte_identical_to_sequential() {
        let seq = shard_file("demo", 7, 23, ShardSpec::FULL).render();
        let shards: Vec<ShardFile> = (0..3)
            .map(|i| shard_file("demo", 7, 23, ShardSpec::new(i, 3).unwrap()))
            .collect();
        assert_eq!(merge(&shards).unwrap().render(), seq);
    }
}
