//! The plain-text shard result format and its coverage-checked merge.
//!
//! Each shard of a sharded sweep writes a **self-describing, line-oriented
//! text file** (the workspace vendors no serde): a three-line header naming
//! the grid, its seed, its axes, the total cell count and the shard spec;
//! one `cell` line per swept cell carrying the cell's global index, its
//! `(n, f, k)` point, its [`cell_seed`] and a decision
//! digest; and an `end <count>` footer so truncated files are detectable.
//!
//! ```text
//! kset-sweep v1
//! grid border seed 42 axes theorem8-border cells 9
//! shard 1/3 range 3..6
//! cell 3 n 6 f 4 k 2 seed 0xc86a910a935dc447 digest 0x0011223344556677
//! cell 4 n 9 f 6 k 2 seed 0x... digest 0x...
//! cell 5 n 12 f 8 k 2 seed 0x... digest 0x...
//! end 3
//! ```
//!
//! [`ShardFile::parse`] validates everything re-derivable: the shard's
//! declared range must be [`ShardSpec::range`] of
//! the declared total, cell indices must walk that range exactly (so
//! duplicated, out-of-order, missing and foreign indices are all typed
//! errors), every seed must re-derive from `(grid_seed, index)`, and the
//! footer count must match. [`merge`] then reassembles a full grid from
//! per-shard files, verifying **exact coverage** — headers identical,
//! every shard of the partition present exactly once, every cell index
//! exactly once — before returning the canonical single-shard
//! ([`ShardSpec::FULL`]) file, whose rendering is byte-identical to what a
//! sequential single-process sweep of the full grid writes. That byte
//! identity is the CI conformance gate.

use std::fmt;

use super::{cell_seed, GridCell, ShardError, ShardSpec};

/// The first line of every shard file; bump the version on format changes.
pub const FORMAT_MAGIC: &str = "kset-sweep v1";

/// One swept cell: its grid coordinates and the digest of its outcome.
///
/// `digest` is whatever 64-bit summary the sweep worker produced (the
/// experiments binary uses the release-stable
/// [`stable_fingerprint`](crate::stable_fingerprint) of the
/// cell's decision outcome); equality of digests across runs is the
/// determinism claim the shard-matrix CI gate checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRecord {
    /// Global index of the cell in the full grid's emission order.
    pub index: usize,
    /// System size.
    pub n: usize,
    /// Failure budget of the cell.
    pub f: usize,
    /// Agreement degree.
    pub k: usize,
    /// The cell's deterministic seed, `cell_seed(grid_seed, index)`.
    pub seed: u64,
    /// 64-bit digest of the cell's decision outcome.
    pub digest: u64,
}

impl CellRecord {
    /// Pairs a grid cell with its decision digest.
    pub fn new(cell: &GridCell, digest: u64) -> Self {
        CellRecord {
            index: cell.index,
            n: cell.n,
            f: cell.f,
            k: cell.k,
            seed: cell.seed,
            digest,
        }
    }

    /// Renders the `cell` line (no trailing newline).
    pub fn render_line(&self) -> String {
        format!(
            "cell {} n {} f {} k {} seed {:#018x} digest {:#018x}",
            self.index, self.n, self.f, self.k, self.seed, self.digest
        )
    }
}

/// The self-describing header of a shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepHeader {
    /// Name of the grid (one whitespace-free token, e.g. `border`).
    pub grid: String,
    /// The grid seed every cell seed derives from.
    pub grid_seed: u64,
    /// Whitespace-free description of the grid's axes
    /// (e.g. `ns=64,128;fs=1,2;ks=1`): what the index space was built from.
    pub axes: String,
    /// Total number of cells in the **full** grid (not this shard).
    pub total: usize,
    /// Which shard of the grid this file holds.
    pub shard: ShardSpec,
}

impl SweepHeader {
    /// Builds a header, validating that `grid` and `axes` are single
    /// non-empty whitespace-free tokens (the format is token-delimited).
    ///
    /// # Panics
    ///
    /// Panics on an empty or whitespace-containing `grid`/`axes` — those
    /// are writer bugs, not runtime conditions.
    pub fn new(
        grid: impl Into<String>,
        grid_seed: u64,
        axes: impl Into<String>,
        total: usize,
        shard: ShardSpec,
    ) -> Self {
        let (grid, axes) = (grid.into(), axes.into());
        for (name, value) in [("grid", &grid), ("axes", &axes)] {
            assert!(
                !value.is_empty() && !value.contains(char::is_whitespace),
                "{name} must be one non-empty whitespace-free token, got {value:?}"
            );
        }
        SweepHeader {
            grid,
            grid_seed,
            axes,
            total,
            shard,
        }
    }

    /// The contiguous range of global cell indices this shard owns.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.shard.range(self.total)
    }

    /// Renders the three header lines (with trailing newline).
    pub fn render(&self) -> String {
        let r = self.range();
        format!(
            "{FORMAT_MAGIC}\ngrid {} seed {} axes {} cells {}\nshard {} range {}..{}\n",
            self.grid, self.grid_seed, self.axes, self.total, self.shard, r.start, r.end
        )
    }

    /// The header this file must agree with to merge with `other`:
    /// everything except the shard index.
    fn merge_key(&self) -> (&str, u64, &str, usize, usize) {
        (
            &self.grid,
            self.grid_seed,
            &self.axes,
            self.total,
            self.shard.shard_count(),
        )
    }
}

/// Renders the `end <count>` footer line (with trailing newline). Shared
/// by [`ShardFile::render`] and streaming writers that append record
/// lines as cells complete.
pub fn render_footer(records: usize) -> String {
    format!("end {records}\n")
}

/// A parsed (or about-to-be-rendered) shard result file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFile {
    /// The self-describing header.
    pub header: SweepHeader,
    /// One record per owned cell, in global cell order.
    pub records: Vec<CellRecord>,
}

impl ShardFile {
    /// Renders the complete file: header, one line per record, footer.
    pub fn render(&self) -> String {
        let mut out = self.header.render();
        for record in &self.records {
            out.push_str(&record.render_line());
            out.push('\n');
        }
        out.push_str(&render_footer(self.records.len()));
        out
    }

    /// Parses and validates a shard file.
    ///
    /// Beyond the grammar, this checks every property re-derivable from
    /// the header alone: the declared range is the shard's
    /// [`range`](SweepHeader::range), record indices walk that range
    /// exactly (duplicates, gaps, reorderings and foreign indices all
    /// surface as [`ParseError::UnexpectedIndex`]), seeds re-derive via
    /// [`cell_seed`], the footer count matches, and nothing follows the
    /// footer. A file that parses is a complete, internally consistent
    /// shard.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut lines = text.lines().enumerate();
        let mut next_line = |expect: &str| {
            lines
                .next()
                .ok_or_else(|| ParseError::Truncated {
                    expected: expect.to_string(),
                })
                .map(|(no, line)| (no + 1, line))
        };

        let (no, magic) = next_line("format magic")?;
        if magic != FORMAT_MAGIC {
            return Err(ParseError::BadMagic {
                line: no,
                found: magic.to_string(),
            });
        }

        let (no, grid_line) = next_line("grid header")?;
        let t: Vec<&str> = grid_line.split_whitespace().collect();
        let [_, grid, _, seed, _, axes, _, cells] = t[..] else {
            return Err(ParseError::bad_line(no, grid_line));
        };
        if t[0] != "grid" || t[2] != "seed" || t[4] != "axes" || t[6] != "cells" {
            return Err(ParseError::bad_line(no, grid_line));
        }
        let grid_seed: u64 = seed
            .parse()
            .map_err(|_| ParseError::bad_line(no, grid_line))?;
        let total: usize = cells
            .parse()
            .map_err(|_| ParseError::bad_line(no, grid_line))?;

        let (no, shard_line) = next_line("shard header")?;
        let t: Vec<&str> = shard_line.split_whitespace().collect();
        let [_, spec, _, range] = t[..] else {
            return Err(ParseError::bad_line(no, shard_line));
        };
        if t[0] != "shard" || t[2] != "range" {
            return Err(ParseError::bad_line(no, shard_line));
        }
        let shard: ShardSpec = spec.parse().map_err(ParseError::BadShard)?;
        let (start, end) = range
            .split_once("..")
            .and_then(|(s, e)| Some((s.parse::<usize>().ok()?, e.parse::<usize>().ok()?)))
            .ok_or_else(|| ParseError::bad_line(no, shard_line))?;
        let header = SweepHeader::new(grid, grid_seed, axes, total, shard);
        let expected = header.range();
        if (start, end) != (expected.start, expected.end) {
            return Err(ParseError::RangeMismatch {
                declared: start..end,
                derived: expected,
            });
        }

        // The range length comes from an untrusted header: cap the
        // pre-allocation so a file claiming 10^12 cells errors out on its
        // first bad line instead of aborting on the reservation.
        let mut records = Vec::with_capacity(expected.len().min(4096));
        let mut walk = expected.clone();
        let declared = loop {
            let (no, line) = next_line("cell record or footer")?;
            let t: Vec<&str> = line.split_whitespace().collect();
            match t[..] {
                ["end", count] => {
                    break count
                        .parse::<usize>()
                        .map_err(|_| ParseError::bad_line(no, line))?;
                }
                ["cell", index, "n", n, "f", f, "k", k, "seed", seed, "digest", digest] => {
                    let record = CellRecord {
                        index: index.parse().map_err(|_| ParseError::bad_line(no, line))?,
                        n: n.parse().map_err(|_| ParseError::bad_line(no, line))?,
                        f: f.parse().map_err(|_| ParseError::bad_line(no, line))?,
                        k: k.parse().map_err(|_| ParseError::bad_line(no, line))?,
                        seed: parse_hex(seed).ok_or_else(|| ParseError::bad_line(no, line))?,
                        digest: parse_hex(digest).ok_or_else(|| ParseError::bad_line(no, line))?,
                    };
                    match walk.next() {
                        Some(expect) if expect == record.index => {}
                        expect => {
                            return Err(ParseError::UnexpectedIndex {
                                expected: expect,
                                found: record.index,
                            });
                        }
                    }
                    let derived = cell_seed(grid_seed, record.index);
                    if record.seed != derived {
                        return Err(ParseError::SeedMismatch {
                            index: record.index,
                            derived,
                            found: record.seed,
                        });
                    }
                    records.push(record);
                }
                _ => return Err(ParseError::bad_line(no, line)),
            }
        };
        if declared != records.len() {
            return Err(ParseError::CountMismatch {
                declared,
                actual: records.len(),
            });
        }
        if let Some(missing) = walk.next() {
            return Err(ParseError::UnexpectedIndex {
                expected: Some(missing),
                found: usize::MAX,
            });
        }
        if let Some((no, line)) = lines.find(|(_, l)| !l.trim().is_empty()) {
            return Err(ParseError::bad_line(no + 1, line));
        }
        Ok(ShardFile { header, records })
    }
}

fn parse_hex(token: &str) -> Option<u64> {
    let hex = token.strip_prefix("0x")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Why a shard file failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input ended before the grammar did — a truncated file.
    Truncated {
        /// What the parser was looking for when the input ran out.
        expected: String,
    },
    /// The first line is not [`FORMAT_MAGIC`].
    BadMagic {
        /// 1-based line number.
        line: usize,
        /// The line found instead.
        found: String,
    },
    /// A line did not match the token grammar.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        content: String,
    },
    /// The shard spec itself was invalid (e.g. `5/3`).
    BadShard(ShardError),
    /// The declared cell range is not what the shard spec derives to.
    RangeMismatch {
        /// The range the file claims.
        declared: std::ops::Range<usize>,
        /// The range `ShardSpec::range(total)` derives.
        derived: std::ops::Range<usize>,
    },
    /// Cell indices must walk the shard's range exactly; duplicated,
    /// out-of-order, missing and out-of-shard indices all land here.
    UnexpectedIndex {
        /// The next index the range walk expected (`None`: walk done).
        expected: Option<usize>,
        /// The index found (`usize::MAX` when a record is missing
        /// entirely).
        found: usize,
    },
    /// A record's seed does not re-derive from `(grid_seed, index)`.
    SeedMismatch {
        /// The record's cell index.
        index: usize,
        /// `cell_seed(grid_seed, index)`.
        derived: u64,
        /// The seed in the file.
        found: u64,
    },
    /// The `end` footer disagrees with the number of records present.
    CountMismatch {
        /// The count the footer declares.
        declared: usize,
        /// The records actually present.
        actual: usize,
    },
}

impl ParseError {
    fn bad_line(line: usize, content: &str) -> Self {
        ParseError::BadLine {
            line,
            content: content.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { expected } => {
                write!(f, "truncated shard file: expected {expected}")
            }
            ParseError::BadMagic { line, found } => {
                write!(
                    f,
                    "line {line}: not a {FORMAT_MAGIC:?} file (found {found:?})"
                )
            }
            ParseError::BadLine { line, content } => {
                write!(f, "line {line}: malformed line {content:?}")
            }
            ParseError::BadShard(e) => write!(f, "invalid shard spec: {e}"),
            ParseError::RangeMismatch { declared, derived } => write!(
                f,
                "declared range {}..{} but the shard spec derives {}..{}",
                declared.start, declared.end, derived.start, derived.end
            ),
            ParseError::UnexpectedIndex { expected, found } => match expected {
                Some(e) if *found == usize::MAX => {
                    write!(f, "missing record for cell {e}")
                }
                Some(e) => write!(f, "expected cell {e}, found cell {found}"),
                None => write!(f, "cell {found} lies outside this shard's range"),
            },
            ParseError::SeedMismatch {
                index,
                derived,
                found,
            } => write!(
                f,
                "cell {index}: seed {found:#018x} does not re-derive \
                 (cell_seed gives {derived:#018x})"
            ),
            ParseError::CountMismatch { declared, actual } => {
                write!(f, "footer declares {declared} records, file has {actual}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Merges per-shard result files back into the canonical full-grid file,
/// verifying exact coverage.
///
/// Requirements, each with a typed [`MergeError`]:
///
/// * every file describes the **same grid** — name, grid seed, axes,
///   total and shard count all equal (cross-grid mixes are rejected);
/// * the shard indices are exactly `0..shard_count`, each **exactly
///   once** (a withheld or doubled shard is rejected);
/// * the union of records covers every cell index **exactly once**, and
///   every seed re-derives from `(grid_seed, index)` (defense in depth —
///   [`ShardFile::parse`] already enforces both per file).
///
/// The result carries [`ShardSpec::FULL`] and records in cell order, so
/// `merge(shards)?.render()` is byte-identical to the file a sequential
/// single-process sweep of the whole grid writes.
pub fn merge(shards: &[ShardFile]) -> Result<ShardFile, MergeError> {
    use std::collections::{BTreeMap, BTreeSet};

    let Some(first) = shards.first() else {
        return Err(MergeError::NoShards);
    };
    let key = first.header.merge_key();
    let count = first.header.shard.shard_count();
    let total = first.header.total;
    // Header totals and shard counts come from *files*: never allocate
    // proportionally to them (a corrupt header claiming 10^12 cells must
    // produce a typed error, not an OOM abort), only to the actual input.
    let mut seen_shards: BTreeSet<usize> = BTreeSet::new();
    let mut slots: BTreeMap<usize, CellRecord> = BTreeMap::new();
    for file in shards {
        if file.header.merge_key() != key {
            return Err(MergeError::GridMismatch {
                expected: Box::new(first.header.clone()),
                found: Box::new(file.header.clone()),
            });
        }
        let index = file.header.shard.shard_index();
        if !seen_shards.insert(index) {
            return Err(MergeError::DuplicateShard { shard_index: index });
        }
        for record in &file.records {
            let derived = cell_seed(first.header.grid_seed, record.index);
            if record.seed != derived {
                return Err(MergeError::SeedMismatch {
                    index: record.index,
                    derived,
                    found: record.seed,
                });
            }
            if record.index >= total {
                return Err(MergeError::IndexOutOfRange {
                    index: record.index,
                    total,
                });
            }
            if slots.insert(record.index, *record).is_some() {
                return Err(MergeError::DuplicateIndex {
                    index: record.index,
                });
            }
        }
    }
    // The first absent shard (or cell) lies within one position of the
    // number of *present* ones, so these scans are bounded by the input
    // size even when the claimed counts are absurd.
    if seen_shards.len() != count {
        let shard_index = (0..count)
            .find(|i| !seen_shards.contains(i))
            .expect("fewer distinct shards than the count: one is missing");
        return Err(MergeError::MissingShard { shard_index });
    }
    if slots.len() != total {
        let index = (0..total)
            .find(|i| !slots.contains_key(i))
            .expect("fewer distinct cells than the total: one is missing");
        return Err(MergeError::MissingIndex { index });
    }
    Ok(ShardFile {
        header: SweepHeader {
            shard: ShardSpec::FULL,
            ..first.header.clone()
        },
        // BTreeMap iteration is index order: exactly the sequential file.
        records: slots.into_values().collect(),
    })
}

/// Why a set of shard files does not merge into a full grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No input files.
    NoShards,
    /// Two files describe different grids (name, seed, axes, total or
    /// shard count differ) — a cross-grid mix.
    GridMismatch {
        /// The header of the first file, setting the expectation.
        expected: Box<SweepHeader>,
        /// The disagreeing header.
        found: Box<SweepHeader>,
    },
    /// The same shard index appeared twice.
    DuplicateShard {
        /// The doubled shard.
        shard_index: usize,
    },
    /// A shard of the partition was withheld.
    MissingShard {
        /// The absent shard.
        shard_index: usize,
    },
    /// Two records claim the same cell.
    DuplicateIndex {
        /// The doubled cell index.
        index: usize,
    },
    /// A cell of the grid has no record.
    MissingIndex {
        /// The uncovered cell index.
        index: usize,
    },
    /// A record's index lies outside the grid.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The grid's cell count.
        total: usize,
    },
    /// A record's seed does not re-derive from `(grid_seed, index)`.
    SeedMismatch {
        /// The record's cell index.
        index: usize,
        /// `cell_seed(grid_seed, index)`.
        derived: u64,
        /// The seed in the file.
        found: u64,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shard files to merge"),
            MergeError::GridMismatch { expected, found } => write!(
                f,
                "cross-grid mix: expected grid {} seed {} axes {} cells {} ({} shards), \
                 found grid {} seed {} axes {} cells {} ({} shards)",
                expected.grid,
                expected.grid_seed,
                expected.axes,
                expected.total,
                expected.shard.shard_count(),
                found.grid,
                found.grid_seed,
                found.axes,
                found.total,
                found.shard.shard_count(),
            ),
            MergeError::DuplicateShard { shard_index } => {
                write!(f, "shard {shard_index} appears more than once")
            }
            MergeError::MissingShard { shard_index } => {
                write!(f, "shard {shard_index} is missing from the merge set")
            }
            MergeError::DuplicateIndex { index } => {
                write!(f, "cell {index} is covered by two records")
            }
            MergeError::MissingIndex { index } => {
                write!(f, "cell {index} is covered by no record")
            }
            MergeError::IndexOutOfRange { index, total } => {
                write!(f, "cell {index} lies outside the {total}-cell grid")
            }
            MergeError::SeedMismatch {
                index,
                derived,
                found,
            } => write!(
                f,
                "cell {index}: seed {found:#018x} does not re-derive \
                 (cell_seed gives {derived:#018x})"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic grid of `total` cells with digests derived from seeds.
    fn shard_file(grid: &str, grid_seed: u64, total: usize, spec: ShardSpec) -> ShardFile {
        let header = SweepHeader::new(grid, grid_seed, "ns=4;fs=1;ks=1", total, spec);
        let records = header
            .range()
            .map(|index| CellRecord {
                index,
                n: 4,
                f: 1,
                k: 1,
                seed: cell_seed(grid_seed, index),
                digest: cell_seed(grid_seed, index).rotate_left(7),
            })
            .collect();
        ShardFile { header, records }
    }

    #[test]
    fn round_trip_is_identity() {
        for (index, count) in [(0, 1), (0, 3), (1, 3), (2, 3)] {
            let file = shard_file("demo", 42, 10, ShardSpec::new(index, count).unwrap());
            let parsed = ShardFile::parse(&file.render()).expect("rendered files parse");
            assert_eq!(parsed, file);
            assert_eq!(parsed.render(), file.render());
        }
    }

    #[test]
    fn parse_rejects_truncation() {
        let full = shard_file("demo", 42, 10, ShardSpec::FULL).render();
        // Drop the footer line.
        let truncated = full.trim_end_matches('\n').rsplit_once('\n').unwrap().0;
        assert!(matches!(
            ShardFile::parse(truncated),
            Err(ParseError::Truncated { .. })
        ));
        // Drop everything after the header.
        let header_only: String = full.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            ShardFile::parse(&header_only),
            Err(ParseError::Truncated { .. })
        ));
        assert!(matches!(
            ShardFile::parse(""),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn parse_rejects_duplicate_and_reordered_indices() {
        let file = shard_file("demo", 42, 6, ShardSpec::FULL);
        let mut dup = file.clone();
        dup.records[3] = dup.records[2];
        assert_eq!(
            ShardFile::parse(&dup.render()),
            Err(ParseError::UnexpectedIndex {
                expected: Some(3),
                found: 2
            })
        );
        let mut swapped = file.clone();
        swapped.records.swap(1, 2);
        assert!(matches!(
            ShardFile::parse(&swapped.render()),
            Err(ParseError::UnexpectedIndex { .. })
        ));
    }

    #[test]
    fn parse_rejects_seed_mismatch() {
        let mut file = shard_file("demo", 42, 6, ShardSpec::FULL);
        file.records[4].seed ^= 1;
        assert!(matches!(
            ShardFile::parse(&file.render()),
            Err(ParseError::SeedMismatch { index: 4, .. })
        ));
    }

    #[test]
    fn parse_rejects_footer_count_mismatch_and_trailing_garbage() {
        let good = shard_file("demo", 42, 4, ShardSpec::FULL).render();
        let lying = good.replace("end 4", "end 3");
        assert_eq!(
            ShardFile::parse(&lying),
            Err(ParseError::CountMismatch {
                declared: 3,
                actual: 4
            })
        );
        let trailing = format!("{good}cell 9 n 4 f 1 k 1 seed 0x0 digest 0x0\n");
        assert!(matches!(
            ShardFile::parse(&trailing),
            Err(ParseError::BadLine { .. })
        ));
    }

    #[test]
    fn parse_rejects_foreign_range_and_bad_shard() {
        let good = shard_file("demo", 42, 10, ShardSpec::new(1, 3).unwrap()).render();
        // Claim a range the spec does not derive.
        let skewed = good.replace("range 4..7", "range 3..7");
        assert!(matches!(
            ShardFile::parse(&skewed),
            Err(ParseError::RangeMismatch { .. })
        ));
        let invalid = good.replace("shard 1/3", "shard 7/3");
        assert!(matches!(
            ShardFile::parse(&invalid),
            Err(ParseError::BadShard(_))
        ));
    }

    #[test]
    fn merge_reassembles_any_partition() {
        let seq = shard_file("demo", 42, 11, ShardSpec::FULL);
        for count in 1..=5 {
            let shards: Vec<ShardFile> = (0..count)
                .map(|i| shard_file("demo", 42, 11, ShardSpec::new(i, count).unwrap()))
                .collect();
            // Merge in reverse order too: input order must not matter.
            let merged = merge(&shards).expect("full partition merges");
            assert_eq!(merged, seq);
            let reversed: Vec<ShardFile> = shards.into_iter().rev().collect();
            assert_eq!(merge(&reversed).unwrap().render(), seq.render());
        }
    }

    #[test]
    fn merge_rejects_withheld_doubled_and_mixed_shards() {
        let make = |i| shard_file("demo", 42, 11, ShardSpec::new(i, 3).unwrap());
        assert_eq!(
            merge(&[make(0), make(2)]),
            Err(MergeError::MissingShard { shard_index: 1 })
        );
        assert_eq!(
            merge(&[make(0), make(1), make(1)]),
            Err(MergeError::DuplicateShard { shard_index: 1 })
        );
        assert_eq!(merge(&[]), Err(MergeError::NoShards));
        // Cross-grid mixes: different seed, and different grid name.
        let other_seed = shard_file("demo", 43, 11, ShardSpec::new(1, 3).unwrap());
        assert!(matches!(
            merge(&[make(0), other_seed, make(2)]),
            Err(MergeError::GridMismatch { .. })
        ));
        let other_grid = shard_file("border", 42, 11, ShardSpec::new(1, 3).unwrap());
        assert!(matches!(
            merge(&[make(0), other_grid, make(2)]),
            Err(MergeError::GridMismatch { .. })
        ));
    }

    #[test]
    fn hostile_claimed_totals_error_instead_of_allocating() {
        // Header totals and shard counts are untrusted input: a file
        // claiming ~2^64 cells must produce a typed error, not a capacity
        // panic or an OOM abort (these tests pass *by terminating*).
        let range = ShardSpec::new(0, 3).unwrap().range(usize::MAX);
        let text = format!(
            "{FORMAT_MAGIC}\n\
             grid demo seed 42 axes a cells {}\n\
             shard 0/3 range {}..{}\n\
             cell 0 n 4 f 1 k 1 seed {:#018x} digest 0x0\n\
             end 1\n",
            usize::MAX,
            range.start,
            range.end,
            cell_seed(42, 0),
        );
        assert!(matches!(
            ShardFile::parse(&text),
            Err(ParseError::UnexpectedIndex { .. })
        ));

        // Merge side: a programmatic file claiming an absurd grid total …
        let huge_total = ShardFile {
            header: SweepHeader::new("demo", 42, "a", usize::MAX, ShardSpec::FULL),
            records: vec![CellRecord {
                index: 0,
                n: 4,
                f: 1,
                k: 1,
                seed: cell_seed(42, 0),
                digest: 0,
            }],
        };
        assert_eq!(
            merge(&[huge_total]),
            Err(MergeError::MissingIndex { index: 1 })
        );
        // … or an absurd shard count.
        let huge_count = ShardFile {
            header: SweepHeader::new("demo", 42, "a", 1, ShardSpec::new(0, usize::MAX).unwrap()),
            records: vec![CellRecord {
                index: 0,
                n: 4,
                f: 1,
                k: 1,
                seed: cell_seed(42, 0),
                digest: 0,
            }],
        };
        assert_eq!(
            merge(&[huge_count]),
            Err(MergeError::MissingShard { shard_index: 1 })
        );
    }

    #[test]
    fn merged_render_is_byte_identical_to_sequential() {
        let seq = shard_file("demo", 7, 23, ShardSpec::FULL).render();
        let shards: Vec<ShardFile> = (0..3)
            .map(|i| shard_file("demo", 7, 23, ShardSpec::new(i, 3).unwrap()))
            .collect();
        assert_eq!(merge(&shards).unwrap().render(), seq);
    }
}
