//! Parallel grid sweeps over scenarios, with deterministic per-cell seeds.
//!
//! The experiment harness spends its time running many independent
//! `(n, f, k, seed)` cells — border constructions, possibility grids,
//! randomized schedule batteries. Each cell is a pure function of its
//! parameters, so the grid parallelizes trivially; this module provides the
//! shared runner, and [`scale_grid`] builds capacity-checked `(n, f, k)`
//! cell lists spanning system sizes up to the full [`ProcessSet`] capacity
//! (n ∈ {64, 128, 256, 512} all run under the same [`cell_seed`] contract).
//!
//! Guarantees:
//!
//! * **Determinism** — [`sweep`] returns results in cell order, and each
//!   cell sees only its own inputs, so the parallel run is *identical* to
//!   [`sweep_seq`] whenever the worker itself is deterministic.
//! * **Deterministic seeding** — [`cell_seed`] derives a well-mixed per-cell
//!   seed from a grid seed and the cell index, so "cell 17 of grid 42" is
//!   the same scenario on every machine and at every thread count.
//!
//! Parallelism uses `std::thread::scope` with one stride of the cell list
//! per worker thread (the environment vendors no rayon). Beyond one host,
//! the grid shards across processes under the same contract:
//!
//! * [`ShardSpec`] ([`shard`]) — deterministic, validated cell→shard
//!   assignment as contiguous ranges over the emitted index space; cell
//!   indices and seeds are globally stable regardless of shard count.
//! * [`sweep_streaming`] / [`sweep_streaming_ordered`] ([`stream`]) —
//!   bounded-memory runners delivering `(index, result)` to a sink as
//!   cells complete, instead of materializing the grid.
//! * [`CellRecord`] / [`ShardFile`] / [`merge`] ([`record`]) — the
//!   plain-text per-shard result format and its coverage-checked merge,
//!   whose output is byte-identical to a sequential sweep's.
//! * [`sweep_batched`] ([`batched`]) — shape-grouped batched execution:
//!   same-shape cells run as one structure-of-arrays kernel invocation,
//!   with results scattered back into canonical cell order (so records
//!   stay byte-identical to the sequential reference).
//!
//! # Examples
//!
//! ```
//! use kset_sim::sweep::{cell_seed, sweep, sweep_seq};
//!
//! let cells: Vec<u64> = (0..32).collect();
//! let par = sweep(&cells, |i, &c| c * 2 + cell_seed(7, i) % 2);
//! let seq = sweep_seq(&cells, |i, &c| c * 2 + cell_seed(7, i) % 2);
//! assert_eq!(par, seq);
//! ```

use std::fmt;
use std::num::NonZeroUsize;
use std::thread;

use crate::ids::{CapacityError, ProcessSet};

pub mod batched;
pub mod record;
pub mod shard;
pub mod stream;

pub use batched::sweep_batched;
pub use record::{
    merge, CellLineError, CellRecord, FormatVersion, MergeError, Observation, ParseError,
    PartialShardFile, ShardFile, SweepHeader,
};
pub use shard::{ShardError, ShardSpec};
pub use stream::{sweep_streaming, sweep_streaming_ordered, StreamError};

/// One cell of an `(n, f, k)` scale grid, with its deterministic seed.
///
/// Produced by [`scale_grid`]; `seed` is [`cell_seed`] of the grid seed and
/// the cell's emission index, so a cell's scenario is a pure function of the
/// grid parameters — identical across hosts, thread counts and runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Position of this cell in the emitted grid (the `index` argument the
    /// sweep worker receives).
    pub index: usize,
    /// System size.
    pub n: usize,
    /// Number of failures the scenario tolerates/injects.
    pub f: usize,
    /// Agreement degree (k-set agreement).
    pub k: usize,
    /// Deterministic per-cell seed: `cell_seed(grid_seed, index)`.
    pub seed: u64,
}

/// Why a grid could not be built from its axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridError {
    /// An `n` axis value exceeds [`ProcessSet::CAPACITY`].
    Capacity(CapacityError),
    /// An axis lists the same value twice. Duplicates would emit the same
    /// `(n, f, k)` point as two cells with *different* seeds — almost
    /// certainly an axis typo, and poison for "cell X of grid Y" citations
    /// — so they are rejected rather than deduplicated.
    DuplicateAxisValue {
        /// Which axis repeats (`"ns"`, `"fs"` or `"ks"`).
        axis: &'static str,
        /// The repeated value.
        value: usize,
    },
}

impl From<CapacityError> for GridError {
    fn from(e: CapacityError) -> Self {
        GridError::Capacity(e)
    }
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Capacity(e) => e.fmt(f),
            GridError::DuplicateAxisValue { axis, value } => write!(
                f,
                "axis {axis} lists {value} twice; duplicate axis values would \
                 emit duplicate (n, f, k) cells under different seeds"
            ),
        }
    }
}

impl std::error::Error for GridError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GridError::Capacity(e) => Some(e),
            GridError::DuplicateAxisValue { .. } => None,
        }
    }
}

/// Crosses system sizes × failure counts × agreement degrees into a cell
/// list with deterministic per-cell seeds, validating every `n` against
/// [`ProcessSet::CAPACITY`] and every axis against repeated values up
/// front, so bad grids fail with a typed [`GridError`] before any work is
/// scheduled.
///
/// Iteration order (and therefore cell indices and seeds) is `ns` outer,
/// `fs` middle, `ks` inner. Infeasible combinations — `f ≥ n`, `k < 1`, or
/// `k > n` — are skipped *before* indices are assigned, so the seed of a
/// surviving cell never depends on how many infeasible neighbours the
/// caller's axes produced. Duplicate axis values are rejected outright:
/// they would emit the same `(n, f, k)` point twice under different seeds.
///
/// # Examples
///
/// ```
/// use kset_sim::sweep::{cell_seed, scale_grid, GridError};
///
/// let grid = scale_grid(&[64, 128, 256, 512], &[1], &[1, 2], 42).unwrap();
/// assert_eq!(grid.len(), 8);
/// assert_eq!((grid[0].n, grid[0].f, grid[0].k), (64, 1, 1));
/// assert_eq!(grid[0].seed, cell_seed(42, 0));
/// assert!(scale_grid(&[513], &[0], &[1], 42).is_err());
/// assert_eq!(
///     scale_grid(&[128, 128], &[1], &[1], 42),
///     Err(GridError::DuplicateAxisValue { axis: "ns", value: 128 })
/// );
/// ```
pub fn scale_grid(
    ns: &[usize],
    fs: &[usize],
    ks: &[usize],
    grid_seed: u64,
) -> Result<Vec<GridCell>, GridError> {
    for &n in ns {
        if n > ProcessSet::CAPACITY {
            return Err(CapacityError::new(n, ProcessSet::CAPACITY).into());
        }
    }
    for (axis, values) in [("ns", ns), ("fs", fs), ("ks", ks)] {
        let mut seen = std::collections::BTreeSet::new();
        for &value in values {
            if !seen.insert(value) {
                return Err(GridError::DuplicateAxisValue { axis, value });
            }
        }
    }
    let mut cells = Vec::new();
    for &n in ns {
        for &f in fs {
            for &k in ks {
                if f >= n || k < 1 || k > n {
                    continue;
                }
                let index = cells.len();
                cells.push(GridCell {
                    index,
                    n,
                    f,
                    k,
                    seed: cell_seed(grid_seed, index),
                });
            }
        }
    }
    Ok(cells)
}

/// Derives the deterministic seed of cell `index` within grid `grid_seed`
/// (SplitMix64 over the pair).
pub fn cell_seed(grid_seed: u64, index: usize) -> u64 {
    let mut z = grid_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `worker` over every cell sequentially; the reference semantics of
/// [`sweep`].
pub fn sweep_seq<C, R>(cells: &[C], worker: impl Fn(usize, &C) -> R) -> Vec<R> {
    cells
        .iter()
        .enumerate()
        .map(|(i, c)| worker(i, c))
        .collect()
}

/// Runs `worker` over every cell in parallel, returning results in cell
/// order.
///
/// Threads process strided slices of the cell list (`i % threads == t`), so
/// no work queue or locking is involved; results are reassembled in input
/// order before returning. With a deterministic worker the output equals
/// [`sweep_seq`]'s exactly.
pub fn sweep<C, R>(cells: &[C], worker: impl Fn(usize, &C) -> R + Sync) -> Vec<R>
where
    C: Sync,
    R: Send,
{
    let threads = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(cells.len().max(1));
    if threads <= 1 || cells.len() <= 1 {
        return sweep_seq(cells, worker);
    }
    let worker = &worker;
    let mut strides: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    cells
                        .iter()
                        .enumerate()
                        .skip(t)
                        .step_by(threads)
                        .map(|(i, c)| (i, worker(i, c)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            // kset-lint: allow(panic-in-library): propagating a worker panic at join keeps a failed cell loud; swallowing it would silently drop part of the grid
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    // Reassemble in cell order by *index*, not by interleave position: a
    // stride bug then loses results loudly (a hole, caught below) instead of
    // silently permuting them in release builds.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(cells.len());
    slots.resize_with(cells.len(), || None);
    for (i, r) in strides.iter_mut().flat_map(|s| s.drain(..)) {
        assert!(i < slots.len(), "worker produced an out-of-range index {i}");
        assert!(slots[i].is_none(), "cell {i} produced two results");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        // kset-lint: allow(panic-in-library): deliberate loud hole-check — a reassembly gap must abort the sweep rather than silently permute records
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("cell {i} produced no result")))
        .collect()
}

/// Maps every cell of a [`scale_grid`] to a concrete
/// [`Scenario`](crate::scenario::Scenario) via
/// [`Scenario::from_cell`](crate::scenario::Scenario::from_cell): the
/// sweep's deterministic seed contract now pins whole scenarios (crash
/// layouts included) instead of bare `(n, f, k)` tuples.
///
/// # Errors
///
/// As [`scale_grid`]: a [`GridError`] if any `n` exceeds
/// [`ProcessSet::CAPACITY`] or an axis repeats a value.
///
/// # Examples
///
/// ```
/// use kset_sim::sweep::scenario_grid;
///
/// let scenarios = scenario_grid(&[4, 8], &[1], &[1], 42).unwrap();
/// assert_eq!(scenarios.len(), 2);
/// assert!(scenarios.iter().all(|sc| sc.validate().is_ok()));
/// ```
pub fn scenario_grid(
    ns: &[usize],
    fs: &[usize],
    ks: &[usize],
    grid_seed: u64,
) -> Result<Vec<crate::scenario::Scenario>, GridError> {
    Ok(scale_grid(ns, fs, ks, grid_seed)?
        .iter()
        .map(crate::scenario::Scenario::from_cell)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_grid_orders_filters_and_seeds() {
        let grid = scale_grid(&[4, 8], &[1, 9], &[1], 7).unwrap();
        // f = 9 is infeasible at n = 4 and n = 8; only the f = 1 cells
        // survive, with contiguous indices.
        assert_eq!(grid.len(), 2);
        assert_eq!((grid[0].n, grid[0].f, grid[0].k), (4, 1, 1));
        assert_eq!((grid[1].n, grid[1].f, grid[1].k), (8, 1, 1));
        for (i, cell) in grid.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.seed, cell_seed(7, i));
        }
    }

    #[test]
    fn scale_grid_rejects_oversized_n_up_front() {
        let err = scale_grid(&[64, ProcessSet::CAPACITY + 1], &[1], &[1], 7).unwrap_err();
        let GridError::Capacity(err) = err else {
            panic!("expected a capacity error, got {err:?}");
        };
        assert_eq!(err.requested(), ProcessSet::CAPACITY + 1);
        assert_eq!(err.capacity(), ProcessSet::CAPACITY);
    }

    #[test]
    fn scale_grid_rejects_duplicate_axis_values() {
        // Regression: ns = [128, 128] used to emit the same (n, f, k) point
        // twice, as two cells with *different* seeds.
        assert_eq!(
            scale_grid(&[128, 128], &[1], &[1], 7),
            Err(GridError::DuplicateAxisValue {
                axis: "ns",
                value: 128
            })
        );
        assert_eq!(
            scale_grid(&[8, 16], &[1, 2, 1], &[1], 7),
            Err(GridError::DuplicateAxisValue {
                axis: "fs",
                value: 1
            })
        );
        assert_eq!(
            scale_grid(&[8], &[1], &[2, 2], 7),
            Err(GridError::DuplicateAxisValue {
                axis: "ks",
                value: 2
            })
        );
        // Distinct values stay accepted, whatever their order.
        assert!(scale_grid(&[16, 8], &[2, 1], &[1, 2], 7).is_ok());
    }

    #[test]
    fn cell_seed_is_deterministic_and_mixed() {
        assert_eq!(cell_seed(1, 2), cell_seed(1, 2));
        assert_ne!(cell_seed(1, 2), cell_seed(1, 3));
        assert_ne!(cell_seed(1, 2), cell_seed(2, 2));
        // No adjacent-index collisions over a reasonable window.
        let seeds: Vec<u64> = (0..1000).map(|i| cell_seed(42, i)).collect();
        let distinct: std::collections::BTreeSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len());
    }

    #[test]
    fn parallel_equals_sequential() {
        let cells: Vec<u64> = (0..257).collect();
        let f = |i: usize, c: &u64| c.wrapping_mul(3).wrapping_add(cell_seed(9, i));
        assert_eq!(sweep(&cells, f), sweep_seq(&cells, f));
    }

    #[test]
    fn empty_and_singleton_grids() {
        let empty: Vec<u32> = Vec::new();
        assert!(sweep(&empty, |_, c| *c).is_empty());
        assert_eq!(sweep(&[5u32], |i, c| *c as usize + i), vec![5]);
    }

    #[test]
    fn scenario_grid_matches_scale_grid_cells() {
        let cells = scale_grid(&[4, 8], &[1, 2], &[1], 9).unwrap();
        let scenarios = scenario_grid(&[4, 8], &[1, 2], &[1], 9).unwrap();
        assert_eq!(cells.len(), scenarios.len());
        for (cell, sc) in cells.iter().zip(&scenarios) {
            assert_eq!((sc.n, sc.f, sc.k), (cell.n, cell.f, cell.k));
            assert_eq!(sc, &crate::scenario::Scenario::from_cell(cell));
            sc.validate().expect("grid scenarios are valid");
        }
        assert!(scenario_grid(&[ProcessSet::CAPACITY + 1], &[1], &[1], 9).is_err());
    }

    #[test]
    fn results_keep_cell_order() {
        // Make later cells finish first to catch ordering bugs.
        let cells: Vec<u64> = (0..64).rev().collect();
        let out = sweep(&cells, |_, c| {
            std::thread::sleep(std::time::Duration::from_micros(*c * 10));
            *c
        });
        assert_eq!(out, cells);
    }
}
