//! Run traces: the recorded history of a simulation.
//!
//! A *run* in the paper is an infinite sequence of configurations
//! `ρ = (C0, C1, …)` where each `C_{i+1}` results from a step of a single
//! process. The simulator produces finite run *prefixes*; a [`Trace`]
//! records, for every step, who stepped, what was delivered, a fingerprint
//! of the resulting local state, what was sent, and any decision made — plus
//! crash events.
//!
//! Traces serve four purposes:
//!
//! 1. extracting the **failure pattern** `F(·)` of the run;
//! 2. extracting per-process **state sequences** for the
//!    indistinguishability checks of Definition 2 ([`Trace::process_view`]);
//! 3. extracting a replayable **schedule** (who stepped, with which
//!    per-source delivery counts) used by the run-pasting machinery of
//!    Lemmas 11/12 ([`Trace::schedule`]);
//! 4. post-hoc **admissibility** checks ([`crate::admissible`]).
//!
//! The trace is generic only in the decision value type `V`; message
//! payloads and process states are stored as 64-bit fingerprints so traces
//! of different algorithms share one representation.
//!
//! Recording is an observation concern: [`TraceRecorder`] is an
//! [`Observer`] that assembles a [`Trace`] from the typed event stream of
//! [`crate::observe`] — the engine's built-in trace is just this observer
//! attached internally, and the same recorder can be attached to any
//! engine through [`Engine::drive_observed`](crate::Engine::drive_observed).

use crate::failure::FailurePattern;
use crate::ids::{MsgId, ProcessId, Time};
use crate::observe::{
    CrashEvent, DecideEvent, DeliverEvent, FdSampleEvent, Observer, SendEvent, StepEvent,
};

/// One delivered message as recorded in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredRecord {
    /// Message id.
    pub id: MsgId,
    /// Sender.
    pub src: ProcessId,
    /// Fingerprint of the payload.
    pub payload_fp: u64,
}

/// One send as recorded in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendRecord {
    /// Message id assigned by the engine (also assigned to dropped sends).
    pub id: MsgId,
    /// Destination.
    pub dst: ProcessId,
    /// Fingerprint of the payload.
    pub payload_fp: u64,
    /// Whether the send never reached a buffer — dropped by a final-step
    /// omission rule, or addressed to a destination outside the system.
    pub dropped: bool,
}

/// The record of one step of one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord<V> {
    /// Global time of the step (1-based: the first step of the run has
    /// `time == Time::new(1)`).
    pub time: Time,
    /// The stepping process.
    pub pid: ProcessId,
    /// The process's local step count after this step (1-based).
    pub local_step: u64,
    /// Messages consumed by this step.
    pub delivered: Vec<DeliveredRecord>,
    /// Fingerprint of the failure-detector sample, if the model provides
    /// detectors.
    pub fd_fp: Option<u64>,
    /// Fingerprint of the local state *after* the step.
    pub state_fp: u64,
    /// Decision made in this step, if any.
    pub decided: Option<V>,
    /// Messages emitted by this step (including dropped ones).
    pub sent: Vec<SendRecord>,
}

/// A trace event: a step or a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent<V> {
    /// A process took a step.
    Step(StepRecord<V>),
    /// A process crashed at the given time. `after_step` is true when the
    /// crash happened at the end of the process's final step (with possible
    /// send omission), false for initial deaths.
    Crash {
        /// The crashed process.
        pid: ProcessId,
        /// Crash time.
        time: Time,
        /// Whether the crash ended a final step (vs. initial death).
        after_step: bool,
    },
}

/// The full recorded history of a simulation run prefix.
#[derive(Debug, Clone)]
pub struct Trace<V> {
    n: usize,
    events: Vec<TraceEvent<V>>,
}

impl<V: Clone> Trace<V> {
    /// Creates an empty trace over a system of `n` processes.
    pub fn new(n: usize) -> Self {
        Trace {
            n,
            events: Vec::new(),
        }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Appends an event. Intended for the engine.
    pub fn push(&mut self, event: TraceEvent<V>) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent<V>] {
        &self.events
    }

    /// Iterates over the step records only, in order.
    pub fn steps(&self) -> impl Iterator<Item = &StepRecord<V>> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Step(s) => Some(s),
            TraceEvent::Crash { .. } => None,
        })
    }

    /// Number of steps taken in the run prefix.
    pub fn step_count(&self) -> u64 {
        self.steps().count() as u64
    }

    /// The failure pattern `F(·)` of this run prefix.
    pub fn failure_pattern(&self) -> FailurePattern {
        let mut fp = FailurePattern::all_correct(self.n);
        for event in &self.events {
            if let TraceEvent::Crash { pid, time, .. } = event {
                fp.record_crash(*pid, *time);
            }
        }
        fp
    }

    /// The decision of each process, if it made one in this prefix.
    pub fn decisions(&self) -> Vec<Option<V>> {
        let mut out = vec![None; self.n];
        for step in self.steps() {
            if let Some(v) = &step.decided {
                if out[step.pid.index()].is_none() {
                    out[step.pid.index()] = Some(v.clone());
                }
            }
        }
        out
    }

    /// The time at which `pid` decided, if it did.
    pub fn decision_time(&self, pid: ProcessId) -> Option<Time> {
        self.steps()
            .find(|s| s.pid == pid && s.decided.is_some())
            .map(|s| s.time)
    }

    /// The latest decision time over `pids`, or `None` if some process in
    /// `pids` has neither decided nor crashed. This is the `t_dec` of
    /// Lemma 11 (time when the last process in `D̄` has crashed or decided).
    pub fn all_decided_or_crashed_by(
        &self,
        pids: impl IntoIterator<Item = ProcessId>,
    ) -> Option<Time> {
        let fp = self.failure_pattern();
        let mut latest = Time::ZERO;
        for pid in pids {
            let t = match (self.decision_time(pid), fp.crash_time(pid)) {
                (Some(td), _) => td,
                (None, Some(tc)) => tc,
                (None, None) => return None,
            };
            latest = latest.max(t);
        }
        Some(latest)
    }

    /// Per-process view: the sequence of this process's step observations,
    /// used for the indistinguishability check of Definition 2.
    pub fn process_view(&self, pid: ProcessId) -> ProcessView {
        let mut view = ProcessView {
            pid,
            obs: Vec::new(),
            decided_at_local_step: None,
        };
        for step in self.steps().filter(|s| s.pid == pid) {
            view.obs.push(StepObservation {
                delivered: step
                    .delivered
                    .iter()
                    .map(|d| (d.src, d.payload_fp))
                    .collect(),
                fd_fp: step.fd_fp,
                state_fp: step.state_fp,
            });
            if step.decided.is_some() && view.decided_at_local_step.is_none() {
                view.decided_at_local_step = Some(view.obs.len());
            }
        }
        view
    }

    /// Extracts the replayable schedule of this run prefix: for each step,
    /// who stepped and how many of the oldest pending messages from each
    /// source were delivered.
    ///
    /// Replaying such a schedule in another configuration (e.g. the same
    /// per-partition schedule inside a *larger* system whose cross-partition
    /// messages are delayed) reproduces the same per-source delivery
    /// sequences and hence — for deterministic processes — the same state
    /// sequences. This is the executable form of the run-pasting in
    /// Lemmas 11/12.
    pub fn schedule(&self) -> Vec<ScheduleEntry> {
        let mut counts = vec![0usize; self.n];
        self.steps()
            .map(|s| {
                for d in &s.delivered {
                    counts[d.src.index()] += 1;
                }
                let per_source: Vec<(ProcessId, usize)> = counts
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(i, c)| (ProcessId::new(i), std::mem::take(c)))
                    .collect();
                ScheduleEntry {
                    pid: s.pid,
                    per_source,
                }
            })
            .collect()
    }

    /// Message statistics of the run prefix: total sends (including
    /// dropped ones — omission-ruled or out-of-range), dropped sends, and
    /// deliveries. The send count is the *message complexity* figure
    /// reported by experiment E7.
    pub fn message_stats(&self) -> MessageStats {
        let mut stats = MessageStats::default();
        for step in self.steps() {
            for s in &step.sent {
                stats.sent += 1;
                if s.dropped {
                    stats.dropped += 1;
                }
            }
            stats.delivered += step.delivered.len() as u64;
        }
        stats
    }

    /// The number of messages sent (not dropped) to each process that were
    /// never delivered within this prefix.
    pub fn undelivered_counts(&self) -> Vec<usize> {
        let mut sent = vec![0usize; self.n];
        let mut delivered = vec![0usize; self.n];
        for step in self.steps() {
            for s in &step.sent {
                if !s.dropped {
                    sent[s.dst.index()] += 1;
                }
            }
            delivered[step.pid.index()] += step.delivered.len();
        }
        sent.iter()
            .zip(&delivered)
            .map(|(s, d)| s.saturating_sub(*d))
            .collect()
    }
}

/// Message statistics of a run prefix (see [`Trace::message_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageStats {
    /// Messages emitted by steps (including dropped ones).
    pub sent: u64,
    /// Sends dropped by final-step omission rules.
    pub dropped: u64,
    /// Messages consumed by steps.
    pub delivered: u64,
}

impl MessageStats {
    /// Messages actually placed into buffers.
    pub fn transmitted(&self) -> u64 {
        self.sent - self.dropped
    }

    /// Messages still pending at the end of the prefix.
    pub fn pending(&self) -> u64 {
        self.transmitted().saturating_sub(self.delivered)
    }
}

/// One entry of a replayable schedule: a process steps, consuming the oldest
/// `count` pending messages from each listed source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// The stepping process.
    pub pid: ProcessId,
    /// `(source, how many of its oldest pending messages to deliver)`.
    pub per_source: Vec<(ProcessId, usize)>,
}

/// What one process observed in one of its steps: delivered payloads (by
/// source), the failure-detector sample fingerprint, and the state
/// fingerprint after the step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepObservation {
    /// `(source, payload fingerprint)` pairs consumed in the step.
    pub delivered: Vec<(ProcessId, u64)>,
    /// Failure-detector sample fingerprint (if the model provides one).
    pub fd_fp: Option<u64>,
    /// State fingerprint after the step.
    pub state_fp: u64,
}

/// The projection of a trace onto one process: its sequence of step
/// observations, and the local step index at which it decided (1-based), if
/// it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessView {
    /// Whose view this is.
    pub pid: ProcessId,
    /// Per-local-step observations, in order.
    pub obs: Vec<StepObservation>,
    /// 1-based local step of the first decision, if any.
    pub decided_at_local_step: Option<usize>,
}

impl ProcessView {
    /// The observations up to and including the deciding step; the whole
    /// sequence if the process never decided in this prefix.
    ///
    /// Definition 2 compares state sequences *until decision* — a process
    /// may behave differently after deciding (e.g. keep forwarding) without
    /// breaking indistinguishability.
    pub fn until_decision(&self) -> &[StepObservation] {
        match self.decided_at_local_step {
            Some(k) => &self.obs[..k],
            None => &self.obs,
        }
    }
}

/// Assembles a [`Trace`] from the typed event stream of
/// [`crate::observe`] — the trace recorder, reworked as just one
/// [`Observer`] implementation.
///
/// Within one step the substrates emit deliveries, the detector sample,
/// the decision and the sends *before* the closing
/// [`on_step`](Observer::on_step) (see the emission contract in
/// [`crate::observe`]); the recorder buffers them and folds the step into
/// a [`StepRecord`] when the step event closes. Crash events append
/// directly.
///
/// A `Trace` is a *step-substrate* notion — its records are per-process
/// atomic steps. Attached to the round substrate (which emits
/// [`on_round`](Observer::on_round), never `on_step`), the recorder
/// therefore keeps only what a trace can faithfully hold there: the
/// **crash history**. Each round event discards that round's staged
/// message records (so memory stays bounded by one round, not the run);
/// round-level message observation belongs to purpose-built observers
/// such as [`EventCounter`](crate::observe::EventCounter).
/// [`TraceRecorder::NO_ID`] / fingerprint `0` substitute for id and
/// fingerprint fields when an event does not carry them.
#[derive(Debug, Clone)]
pub struct TraceRecorder<V> {
    trace: Trace<V>,
    delivered: Vec<DeliveredRecord>,
    sent: Vec<SendRecord>,
    fd_fp: Option<u64>,
    decided: Option<V>,
}

impl<V: Clone> TraceRecorder<V> {
    /// The message id recorded for events whose substrate tracks no ids.
    pub const NO_ID: MsgId = MsgId::new(u64::MAX);

    /// A recorder over an empty trace for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        TraceRecorder {
            trace: Trace::new(n),
            delivered: Vec::new(),
            sent: Vec::new(),
            fd_fp: None,
            decided: None,
        }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace<V> {
        &self.trace
    }

    /// Consumes the recorder, returning the trace.
    pub fn into_trace(self) -> Trace<V> {
        self.trace
    }
}

impl<V: Clone> Observer<V> for TraceRecorder<V> {
    fn on_deliver(&mut self, event: &DeliverEvent) {
        self.delivered.push(DeliveredRecord {
            id: event.id.unwrap_or(Self::NO_ID),
            src: event.src,
            payload_fp: event.payload_fp.unwrap_or(0),
        });
    }

    fn on_fd_sample(&mut self, event: &FdSampleEvent) {
        self.fd_fp = event.fd_fp;
    }

    fn on_decide(&mut self, event: &DecideEvent<V>) {
        self.decided = Some(event.value.clone());
    }

    fn on_send(&mut self, event: &SendEvent) {
        self.sent.push(SendRecord {
            id: event.id.unwrap_or(Self::NO_ID),
            dst: event.dst,
            payload_fp: event.payload_fp.unwrap_or(0),
            dropped: event.dropped,
        });
    }

    fn on_step(&mut self, event: &StepEvent) {
        self.trace.push(TraceEvent::Step(StepRecord {
            time: event.time,
            pid: event.pid,
            local_step: event.local_step,
            delivered: std::mem::take(&mut self.delivered),
            fd_fp: self.fd_fp.take(),
            state_fp: event.state_fp,
            decided: self.decided.take(),
            sent: std::mem::take(&mut self.sent),
        }));
    }

    fn on_round(&mut self, _event: &crate::observe::RoundEvent) {
        // Round-substrate attachment: a step-shaped trace cannot hold
        // round-granular message events, and no on_step will ever flush
        // the staging buffers — drop this round's staged records so the
        // recorder's memory is bounded by one round, never the run.
        self.delivered.clear();
        self.sent.clear();
        self.fd_fp = None;
        self.decided = None;
    }

    fn on_crash(&mut self, event: &CrashEvent) {
        self.trace.push(TraceEvent::Crash {
            pid: event.pid,
            time: event.time,
            after_step: event.after_step,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(
        time: u64,
        pid: usize,
        local: u64,
        decided: Option<u32>,
        state_fp: u64,
    ) -> TraceEvent<u32> {
        TraceEvent::Step(StepRecord {
            time: Time::new(time),
            pid: ProcessId::new(pid),
            local_step: local,
            delivered: vec![],
            fd_fp: None,
            state_fp,
            decided,
            sent: vec![],
        })
    }

    #[test]
    fn decisions_and_times() {
        let mut t = Trace::new(2);
        t.push(step(1, 0, 1, None, 10));
        t.push(step(2, 1, 1, Some(7), 20));
        t.push(step(3, 0, 2, Some(9), 11));
        assert_eq!(t.decisions(), vec![Some(9), Some(7)]);
        assert_eq!(t.decision_time(ProcessId::new(1)), Some(Time::new(2)));
        assert_eq!(t.decision_time(ProcessId::new(0)), Some(Time::new(3)));
        assert_eq!(t.step_count(), 3);
    }

    #[test]
    fn failure_pattern_from_crash_events() {
        let mut t: Trace<u32> = Trace::new(3);
        t.push(TraceEvent::Crash {
            pid: ProcessId::new(2),
            time: Time::ZERO,
            after_step: false,
        });
        t.push(step(1, 0, 1, None, 1));
        let fp = t.failure_pattern();
        assert_eq!(fp.faulty(), [ProcessId::new(2)].into());
        assert_eq!(fp.crash_time(ProcessId::new(2)), Some(Time::ZERO));
    }

    #[test]
    fn all_decided_or_crashed_requires_every_pid() {
        let mut t = Trace::new(2);
        t.push(step(1, 0, 1, Some(1), 1));
        assert_eq!(
            t.all_decided_or_crashed_by(ProcessId::all(2)),
            None,
            "p2 neither decided nor crashed"
        );
        t.push(TraceEvent::Crash {
            pid: ProcessId::new(1),
            time: Time::new(2),
            after_step: true,
        });
        assert_eq!(
            t.all_decided_or_crashed_by(ProcessId::all(2)),
            Some(Time::new(2))
        );
    }

    #[test]
    fn process_view_cuts_at_decision() {
        let mut t = Trace::new(1);
        t.push(step(1, 0, 1, None, 10));
        t.push(step(2, 0, 2, Some(5), 20));
        t.push(step(3, 0, 3, None, 30));
        let v = t.process_view(ProcessId::new(0));
        assert_eq!(v.obs.len(), 3);
        assert_eq!(v.decided_at_local_step, Some(2));
        assert_eq!(v.until_decision().len(), 2);
        assert_eq!(v.until_decision()[1].state_fp, 20);
    }

    #[test]
    fn process_view_whole_sequence_without_decision() {
        let mut t: Trace<u32> = Trace::new(1);
        t.push(step(1, 0, 1, None, 10));
        let v = t.process_view(ProcessId::new(0));
        assert_eq!(v.decided_at_local_step, None);
        assert_eq!(v.until_decision().len(), 1);
    }

    #[test]
    fn schedule_counts_deliveries_per_source() {
        let mut t: Trace<u32> = Trace::new(3);
        t.push(TraceEvent::Step(StepRecord {
            time: Time::new(1),
            pid: ProcessId::new(0),
            local_step: 1,
            delivered: vec![
                DeliveredRecord {
                    id: MsgId::new(0),
                    src: ProcessId::new(1),
                    payload_fp: 1,
                },
                DeliveredRecord {
                    id: MsgId::new(1),
                    src: ProcessId::new(1),
                    payload_fp: 2,
                },
                DeliveredRecord {
                    id: MsgId::new(2),
                    src: ProcessId::new(2),
                    payload_fp: 3,
                },
            ],
            fd_fp: None,
            state_fp: 0,
            decided: None,
            sent: vec![],
        }));
        let sched = t.schedule();
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[0].pid, ProcessId::new(0));
        assert_eq!(
            sched[0].per_source,
            vec![(ProcessId::new(1), 2), (ProcessId::new(2), 1)]
        );
    }

    #[test]
    fn message_stats_accounting() {
        let mut t: Trace<u32> = Trace::new(2);
        t.push(TraceEvent::Step(StepRecord {
            time: Time::new(1),
            pid: ProcessId::new(0),
            local_step: 1,
            delivered: vec![],
            fd_fp: None,
            state_fp: 0,
            decided: None,
            sent: vec![
                SendRecord {
                    id: MsgId::new(0),
                    dst: ProcessId::new(1),
                    payload_fp: 1,
                    dropped: false,
                },
                SendRecord {
                    id: MsgId::new(1),
                    dst: ProcessId::new(1),
                    payload_fp: 1,
                    dropped: true,
                },
            ],
        }));
        t.push(TraceEvent::Step(StepRecord {
            time: Time::new(2),
            pid: ProcessId::new(1),
            local_step: 1,
            delivered: vec![DeliveredRecord {
                id: MsgId::new(0),
                src: ProcessId::new(0),
                payload_fp: 1,
            }],
            fd_fp: None,
            state_fp: 0,
            decided: None,
            sent: vec![],
        }));
        let stats = t.message_stats();
        assert_eq!(stats.sent, 2);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.transmitted(), 1);
        assert_eq!(stats.pending(), 0);
    }

    #[test]
    fn undelivered_counts_sent_minus_delivered() {
        let mut t: Trace<u32> = Trace::new(2);
        t.push(TraceEvent::Step(StepRecord {
            time: Time::new(1),
            pid: ProcessId::new(0),
            local_step: 1,
            delivered: vec![],
            fd_fp: None,
            state_fp: 0,
            decided: None,
            sent: vec![
                SendRecord {
                    id: MsgId::new(0),
                    dst: ProcessId::new(1),
                    payload_fp: 1,
                    dropped: false,
                },
                SendRecord {
                    id: MsgId::new(1),
                    dst: ProcessId::new(1),
                    payload_fp: 1,
                    dropped: true,
                },
            ],
        }));
        let counts = t.undelivered_counts();
        assert_eq!(
            counts,
            vec![0, 1],
            "dropped sends do not count as undelivered"
        );
    }
}
