//! Line framing over TCP, shared by the coordinator and the worker.
//!
//! The one non-obvious requirement: the coordinator reads with a short
//! socket timeout so handler threads can tick lease expiry while a peer
//! is silent — and a timeout can fire **mid-line**. `read_line` therefore
//! accumulates into a caller-owned buffer that survives timeouts; a line
//! is only ever surfaced once its `\n` arrives, so a torn protocol line
//! is never parsed (mirroring how `PartialShardFile` drops torn tails).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use super::proto::Message;

/// One attempt to read a line. `Timeout` means "nothing complete yet,
/// call again with the same buffer"; bytes already received are kept.
#[derive(Debug)]
pub(crate) enum LineRead {
    /// A complete `\n`-terminated line (newline stripped).
    Line(String),
    /// The read timed out before the newline arrived.
    Timeout,
    /// The peer closed the stream (any torn unterminated tail is
    /// dropped, never parsed).
    Eof,
    /// The stream failed (I/O error or non-UTF-8 line).
    Failed,
}

pub(crate) fn read_line<R: Read>(reader: &mut BufReader<R>, buf: &mut Vec<u8>) -> LineRead {
    match reader.read_until(b'\n', buf) {
        Ok(0) => LineRead::Eof,
        Ok(_) => {
            if buf.last() != Some(&b'\n') {
                // read_until returns without a delimiter only at EOF:
                // the line is torn, so the bytes are unusable.
                return LineRead::Eof;
            }
            buf.pop();
            match String::from_utf8(std::mem::take(buf)) {
                Ok(line) => LineRead::Line(line),
                Err(_) => LineRead::Failed,
            }
        }
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
            ) =>
        {
            LineRead::Timeout
        }
        Err(_) => LineRead::Failed,
    }
}

pub(crate) fn write_line(stream: &mut TcpStream, msg: &Message) -> io::Result<()> {
    let mut line = msg.render();
    line.push('\n');
    stream.write_all(line.as_bytes())
}
