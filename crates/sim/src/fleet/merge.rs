//! Incremental, coverage-checked assembly of a full-grid shard file from
//! out-of-order fleet fragments.
//!
//! [`IncrementalMerge`] is the coordinator's single source of truth about
//! which cells exist: a record is *in the sweep* exactly when `insert`
//! accepted it. Everything else (leases, workers, reassignments) is
//! scheduling noise on top. Two properties make worker churn safe:
//!
//! - **Validation on entry.** Every record's index must be in range, its
//!   seed must re-derive from the grid seed ([`cell_seed`]), and no index
//!   may merge twice — the same checks [`merge`] applies to whole shard
//!   files, applied one record at a time.
//! - **Prefix streaming.** [`drain_ready`](IncrementalMerge::drain_ready)
//!   releases records strictly in index order, so a sink that appends them
//!   after the header always holds a valid
//!   [`PartialShardFile`](crate::sweep::PartialShardFile) prefix —
//!   a coordinator killed mid-run leaves a resumable artifact, exactly
//!   like a killed sequential sweep.
//!
//! [`finish`](IncrementalMerge::finish) does not trust the bookkeeping:
//! it runs the assembled file back through the existing
//! [`merge`] coverage checker, so the final bytes are
//! certified by the same code path that certifies sharded sweeps.
//!
//! Like `proto.rs`, this file is on the `kset-lint` record path: no
//! clocks, no randomized iteration order, no panics.

use std::fmt;

use super::proto::GridId;
use crate::sweep::cell_seed;
use crate::sweep::record::{merge, CellRecord, MergeError, ShardFile, SweepHeader};

/// Assembles a [`ShardFile`] covering the whole grid from records arriving
/// in any order, validating each on entry. See the module docs.
#[derive(Debug)]
pub struct IncrementalMerge {
    header: SweepHeader,
    grid_seed: u64,
    slots: Vec<Option<CellRecord>>,
    filled: usize,
    written: usize,
}

impl IncrementalMerge {
    /// An empty merge for `grid` (the caller validates the `GridId`).
    pub fn new(grid: &GridId) -> IncrementalMerge {
        IncrementalMerge {
            header: grid.full_header(),
            grid_seed: grid.grid_seed,
            slots: std::iter::repeat_with(|| None).take(grid.total).collect(),
            filled: 0,
            written: 0,
        }
    }

    /// The full-grid header (`shard 0/1`) of the file being assembled.
    pub fn header(&self) -> &SweepHeader {
        &self.header
    }

    /// Accepts one record, or rejects it with the reason. Rejection never
    /// corrupts the merge — the caller decides whether the *source* of the
    /// bad record is worth keeping.
    pub fn insert(&mut self, record: CellRecord) -> Result<(), FleetMergeError> {
        let index = record.index;
        let Some(slot) = self.slots.get_mut(index) else {
            return Err(FleetMergeError::IndexOutOfRange {
                index,
                total: self.header.total,
            });
        };
        let derived = cell_seed(self.grid_seed, index);
        if record.seed != derived {
            return Err(FleetMergeError::SeedMismatch {
                index,
                derived,
                found: record.seed,
            });
        }
        if slot.is_some() {
            return Err(FleetMergeError::DuplicateIndex { index });
        }
        *slot = Some(record);
        self.filled += 1;
        Ok(())
    }

    /// Whether `index` has merged already.
    pub fn covered(&self, index: usize) -> bool {
        self.slots.get(index).is_some_and(Option::is_some)
    }

    /// How many cells have merged.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Whether every cell of the grid has merged.
    pub fn is_complete(&self) -> bool {
        self.filled == self.slots.len()
    }

    /// The maximal runs of still-missing indices, in index order — the
    /// work a coordinator (fresh or restarted from a partial file) still
    /// owes.
    pub fn owed_runs(&self) -> Vec<std::ops::Range<usize>> {
        let mut runs = Vec::new();
        let mut run_start = None;
        for (index, slot) in self.slots.iter().enumerate() {
            match (slot, run_start) {
                (None, None) => run_start = Some(index),
                (Some(_), Some(start)) => {
                    runs.push(start..index);
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            runs.push(start..self.slots.len());
        }
        runs
    }

    /// Feeds `emit` every record of the contiguous merged prefix that has
    /// not been emitted yet, in index order. Appending these (rendered)
    /// after the header keeps the sink a valid partial-file prefix at all
    /// times.
    pub fn drain_ready(&mut self, mut emit: impl FnMut(&CellRecord)) {
        while let Some(Some(record)) = self.slots.get(self.written) {
            emit(record);
            self.written += 1;
        }
    }

    /// Certifies and returns the completed file by running it through the
    /// [`merge`] coverage checker — the same referee
    /// that certifies sharded sweeps. Incomplete coverage surfaces as the
    /// checker's own [`MergeError`], never as a panic.
    pub fn finish(self) -> Result<ShardFile, MergeError> {
        let file = ShardFile {
            header: self.header,
            records: self.slots.into_iter().flatten().collect(),
        };
        merge(&[file])
    }
}

/// Why a record was rejected by [`IncrementalMerge::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetMergeError {
    /// The record indexes a cell outside the grid.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The grid's cell count.
        total: usize,
    },
    /// The record's seed does not re-derive from the grid seed — the
    /// worker computed a different grid than it was leased.
    SeedMismatch {
        /// The offending index.
        index: usize,
        /// The seed the grid derives for that index.
        derived: u64,
        /// The seed the record carried.
        found: u64,
    },
    /// The cell already merged (a record may enter the sweep only once).
    DuplicateIndex {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for FleetMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetMergeError::IndexOutOfRange { index, total } => {
                write!(f, "cell {index} outside the grid ({total} cells)")
            }
            FleetMergeError::SeedMismatch {
                index,
                derived,
                found,
            } => write!(
                f,
                "cell {index}: seed {found:#018x} does not re-derive from the \
                 grid seed (expected {derived:#018x})"
            ),
            FleetMergeError::DuplicateIndex { index } => {
                write!(f, "cell {index} already merged")
            }
        }
    }
}

impl std::error::Error for FleetMergeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::record::render_footer;

    fn grid_id(total: usize) -> GridId {
        GridId {
            grid: "synthetic".to_string(),
            grid_seed: 7,
            axes: "unit".to_string(),
            total,
        }
    }

    fn record(grid: &GridId, index: usize) -> CellRecord {
        CellRecord {
            index,
            n: 4,
            f: 1,
            k: 1,
            seed: cell_seed(grid.grid_seed, index),
            digest: 0x1000 + index as u64,
            obs: None,
        }
    }

    #[test]
    fn out_of_order_inserts_finish_to_sequential_bytes() {
        let id = grid_id(5);
        let mut inc = IncrementalMerge::new(&id);
        for index in [3, 0, 4, 1, 2] {
            inc.insert(record(&id, index)).unwrap();
        }
        assert!(inc.is_complete());
        let file = inc.finish().unwrap();
        let sequential = ShardFile {
            header: id.full_header(),
            records: (0..5).map(|i| record(&id, i)).collect(),
        };
        assert_eq!(file.render(), sequential.render());
    }

    #[test]
    fn drain_ready_streams_a_valid_prefix() {
        let id = grid_id(4);
        let mut inc = IncrementalMerge::new(&id);
        let mut sink = inc.header().render();
        let drain = |inc: &mut IncrementalMerge, sink: &mut String| {
            inc.drain_ready(|r| {
                sink.push_str(&r.render_line());
                sink.push('\n');
            });
        };
        inc.insert(record(&id, 2)).unwrap();
        drain(&mut inc, &mut sink);
        // Index 2 is merged but not ready: 0 and 1 are missing.
        let partial = crate::sweep::PartialShardFile::parse(&sink).unwrap();
        assert_eq!(partial.owed(), 0..4);

        inc.insert(record(&id, 0)).unwrap();
        inc.insert(record(&id, 1)).unwrap();
        drain(&mut inc, &mut sink);
        let partial = crate::sweep::PartialShardFile::parse(&sink).unwrap();
        assert_eq!(partial.owed(), 3..4, "0..=2 released once 0 and 1 landed");

        inc.insert(record(&id, 3)).unwrap();
        drain(&mut inc, &mut sink);
        sink.push_str(&render_footer(4));
        let file = inc.finish().unwrap();
        assert_eq!(sink, file.render(), "streamed bytes == certified render");
    }

    #[test]
    fn rejects_bad_records_without_corruption() {
        let id = grid_id(3);
        let mut inc = IncrementalMerge::new(&id);
        inc.insert(record(&id, 1)).unwrap();
        assert_eq!(
            inc.insert(record(&id, 3)),
            Err(FleetMergeError::IndexOutOfRange { index: 3, total: 3 })
        );
        let mut lying = record(&id, 0);
        lying.seed ^= 1;
        assert!(matches!(
            inc.insert(lying),
            Err(FleetMergeError::SeedMismatch { index: 0, .. })
        ));
        assert_eq!(
            inc.insert(record(&id, 1)),
            Err(FleetMergeError::DuplicateIndex { index: 1 })
        );
        assert_eq!(inc.filled(), 1, "rejections merged nothing");
        assert_eq!(inc.owed_runs(), vec![0..1, 2..3]);
    }

    #[test]
    fn incomplete_finish_is_a_merge_error_not_a_panic() {
        let id = grid_id(3);
        let mut inc = IncrementalMerge::new(&id);
        inc.insert(record(&id, 0)).unwrap();
        assert!(inc.finish().is_err());
    }

    #[test]
    fn owed_runs_cover_sparse_seeding() {
        let id = grid_id(6);
        let mut inc = IncrementalMerge::new(&id);
        assert_eq!(inc.owed_runs(), vec![0..6]);
        inc.insert(record(&id, 0)).unwrap();
        inc.insert(record(&id, 3)).unwrap();
        assert_eq!(inc.owed_runs(), vec![1..3, 4..6]);
        assert!(inc.covered(3) && !inc.covered(4));
    }
}
