//! The coordinator's socket shell: a [`TcpListener`], one handler thread
//! per connection, and a mutex around the pure [`FleetState`] from
//! `state.rs`. Everything timing-related lives here — lease deadlines are
//! *checked* by the state machine but the `Instant`s are *read* here, so
//! this file sits outside the `kset-lint` record path while the
//! byte-producing modules (`proto.rs`, `merge.rs`) sit inside it.
//!
//! Liveness is poll-based rather than event-based: sockets carry a short
//! read timeout, and every timeout tick (in any handler, or the accept
//! loop) reaps expired leases and checks for completion. That keeps the
//! design free of a dedicated timer thread and guarantees every handler
//! returns within one poll interval of completion — which `run` relies on,
//! because [`std::thread::scope`] joins all handlers before returning.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use super::observe::{FleetCounts, FleetObserver};
use super::proto::{FinReason, GridId, Message};
use super::state::{FleetState, Grant, LeaseParams};
use super::wire::{read_line, write_line, LineRead};
use super::FleetError;
use crate::sweep::record::{render_footer, CellRecord, ShardFile};

/// Tuning for a coordinator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordinatorConfig {
    /// Lease sizing and expiry (see [`LeaseParams`]).
    pub lease: LeaseParams,
    /// The liveness tick: socket read timeout, accept-poll interval, and
    /// the idle-worker retry interval. Expired leases are reaped within
    /// roughly one tick.
    pub poll: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            lease: LeaseParams {
                cells: 4,
                timeout: Duration::from_secs(30),
            },
            poll: Duration::from_millis(10),
        }
    }
}

/// A bound-but-not-yet-running coordinator. [`Coordinator::bind`] claims
/// the port (typed error if it is in use), [`Coordinator::run`] serves
/// workers until every cell of the grid has merged.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
    state: FleetState,
    config: CoordinatorConfig,
}

/// Everything the handler threads share, behind one mutex: the pure state
/// machine, the caller's observer, and the incremental byte sink.
struct Shared<'o, S: FnMut(&str)> {
    state: FleetState,
    observer: &'o mut dyn FleetObserver,
    sink: S,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<S: FnMut(&str)> Shared<'_, S> {
    fn reap(&mut self, now: Instant) {
        self.state.expire_due(now, self.observer);
    }

    fn complete(&self) -> bool {
        self.state.is_complete()
    }

    fn hello(&mut self, worker: &str) {
        self.state.worker_connected(worker, self.observer);
    }

    fn grant(&mut self, worker: &str, now: Instant) -> Grant {
        self.state.grant(worker, now, self.observer)
    }

    /// Routes one progress record; `false` means the worker faulted and
    /// must be cut off (the lease is already released).
    fn progress(&mut self, lease: u64, record: CellRecord, worker: &str, now: Instant) -> bool {
        match self.state.progress(lease, record, now, self.observer) {
            Ok(_) => {
                // Merged (or stale-dropped); release any newly contiguous
                // prefix to the sink while we still hold the lock, so the
                // on-disk artifact is always a valid partial file.
                let Shared { state, sink, .. } = self;
                state.drain_ready(|record| {
                    let mut line = record.render_line();
                    line.push('\n');
                    sink(&line);
                });
                true
            }
            Err(_) => {
                self.state
                    .protocol_fault(Some(lease), worker, self.observer);
                false
            }
        }
    }

    /// Routes one done message; `false` means the worker faulted.
    fn done(&mut self, lease: u64, cells: usize, worker: &str) -> bool {
        match self.state.done(lease, cells, self.observer) {
            Ok(_) => true,
            Err(_) => {
                self.state
                    .protocol_fault(Some(lease), worker, self.observer);
                false
            }
        }
    }

    fn fault(&mut self, lease: Option<u64>, worker: &str) {
        self.state.protocol_fault(lease, worker, self.observer);
    }

    fn lost(&mut self, lease: Option<u64>, worker: &str) {
        self.state.worker_lost(lease, worker, self.observer);
    }
}

impl Coordinator {
    /// Validates the grid, seeds the state (optionally from `resume`
    /// records recovered from a partial file), and claims `addr`. A port
    /// already in use surfaces as [`FleetError::Io`], not a panic.
    pub fn bind(
        addr: &str,
        grid: GridId,
        resume: Vec<CellRecord>,
        config: CoordinatorConfig,
    ) -> Result<Coordinator, FleetError> {
        let state = FleetState::new(grid, config.lease, resume)?;
        let listener =
            TcpListener::bind(addr).map_err(|e| FleetError::io(format!("bind {addr}"), &e))?;
        Ok(Coordinator {
            listener,
            state,
            config,
        })
    }

    /// The address actually bound (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr, FleetError> {
        self.listener
            .local_addr()
            .map_err(|e| FleetError::io("local_addr".to_string(), &e))
    }

    /// Serves workers until every cell has merged, then certifies the
    /// result through the `record::merge` coverage checker.
    ///
    /// `sink` receives the file incrementally — header first, then cell
    /// lines strictly in index order as their prefix completes, then the
    /// footer — so whatever the sink has written is a valid
    /// [`PartialShardFile`](crate::sweep::PartialShardFile) prefix at
    /// every instant: a killed coordinator leaves a resumable artifact.
    ///
    /// Blocks until completion; if no workers show up (or all die and
    /// none return), it waits indefinitely — callers own the overall
    /// deadline.
    pub fn run<S: FnMut(&str) + Send>(
        mut self,
        observer: &mut dyn FleetObserver,
        mut sink: S,
    ) -> Result<(ShardFile, FleetCounts), FleetError> {
        sink(&self.state.header().render());
        self.state.drain_ready(|record| {
            let mut line = record.render_line();
            line.push('\n');
            sink(&line);
        });
        self.listener
            .set_nonblocking(true)
            .map_err(|e| FleetError::io("set_nonblocking".to_string(), &e))?;

        let poll = self.config.poll;
        let shared = Mutex::new(Shared {
            state: self.state,
            observer,
            sink,
        });
        std::thread::scope(|scope| {
            let shared = &shared;
            loop {
                // Accept errors are ignored: WouldBlock is the idle case,
                // and transient ones (e.g. a peer resetting mid-handshake)
                // cost nothing — the worker will retry or stay lost.
                if let Ok((stream, _)) = self.listener.accept() {
                    scope.spawn(move || handle_connection(stream, shared, poll));
                }
                {
                    let mut guard = lock(shared);
                    let sh = &mut *guard;
                    sh.reap(Instant::now());
                    if sh.complete() {
                        break;
                    }
                }
                std::thread::sleep(poll);
            }
        });

        let Shared {
            state,
            observer,
            mut sink,
        } = shared.into_inner().unwrap_or_else(PoisonError::into_inner);
        let (file, counts) = state.finish(observer).map_err(FleetError::Merge)?;
        sink(&render_footer(file.records.len()));
        Ok((file, counts))
    }
}

/// One worker conversation. Every exit path either completes cleanly
/// (fin) or releases the worker's active lease back to the queue; and
/// every blocking read carries the poll timeout, so the handler notices
/// sweep completion (and expired leases) within one tick no matter how
/// silent its peer is.
fn handle_connection<S: FnMut(&str) + Send>(
    mut stream: TcpStream,
    shared: &Mutex<Shared<'_, S>>,
    poll: Duration,
) {
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut buf = Vec::new();

    // Phase 1: the peer must hello before anything else.
    let worker = loop {
        match read_line(&mut reader, &mut buf) {
            LineRead::Line(line) => match Message::parse(&line) {
                Ok(Message::Hello { worker }) => break worker,
                _ => {
                    let mut guard = lock(shared);
                    (*guard).fault(None, "pre-hello");
                    return;
                }
            },
            LineRead::Timeout => {
                let mut guard = lock(shared);
                let sh = &mut *guard;
                sh.reap(Instant::now());
                if sh.complete() {
                    drop(guard);
                    let _ = write_line(
                        &mut stream,
                        &Message::Fin {
                            reason: FinReason::Complete,
                        },
                    );
                    return;
                }
            }
            LineRead::Eof | LineRead::Failed => return,
        }
    };
    {
        let mut guard = lock(shared);
        (*guard).hello(&worker);
    }

    loop {
        // Phase 2: get the next lease (or learn the sweep is over).
        let message = loop {
            {
                let mut guard = lock(shared);
                let sh = &mut *guard;
                let now = Instant::now();
                sh.reap(now);
                match sh.grant(&worker, now) {
                    Grant::Lease(message) => break message,
                    Grant::Complete => {
                        drop(guard);
                        let _ = write_line(
                            &mut stream,
                            &Message::Fin {
                                reason: FinReason::Complete,
                            },
                        );
                        return;
                    }
                    Grant::Wait => {}
                }
            }
            // Wait for capacity by listening on the socket (its read
            // timeout is the poll interval) instead of sleeping blind: a
            // queued worker that hangs up cleanly is noticed HERE, so the
            // summary's `lost` count stays accurate instead of the handler
            // spinning on grants for a peer that is gone. A worker has
            // nothing legitimate to say before it holds a lease, so any
            // line is a protocol fault.
            match read_line(&mut reader, &mut buf) {
                LineRead::Timeout => {}
                LineRead::Eof => {
                    let mut guard = lock(shared);
                    (*guard).lost(None, &worker);
                    return;
                }
                LineRead::Line(_) | LineRead::Failed => {
                    let mut guard = lock(shared);
                    (*guard).fault(None, &worker);
                    return;
                }
            }
        };
        let lease_id = match &message {
            Message::Lease { lease, .. } => *lease,
            _ => return,
        };
        if write_line(&mut stream, &message).is_err() {
            let mut guard = lock(shared);
            (*guard).lost(Some(lease_id), &worker);
            return;
        }

        // Phase 3: drain the lease — progress lines, then done.
        loop {
            match read_line(&mut reader, &mut buf) {
                LineRead::Line(line) => match Message::parse(&line) {
                    Ok(Message::Progress { lease, record }) => {
                        let mut guard = lock(shared);
                        if !(*guard).progress(lease, record, &worker, Instant::now()) {
                            return;
                        }
                    }
                    Ok(Message::Done { lease, cells }) => {
                        let mut guard = lock(shared);
                        if (*guard).done(lease, cells, &worker) {
                            break;
                        }
                        return;
                    }
                    Ok(_) | Err(_) => {
                        let mut guard = lock(shared);
                        (*guard).fault(Some(lease_id), &worker);
                        return;
                    }
                },
                LineRead::Timeout => {
                    let mut guard = lock(shared);
                    let sh = &mut *guard;
                    sh.reap(Instant::now());
                    if sh.complete() {
                        drop(guard);
                        let _ = write_line(
                            &mut stream,
                            &Message::Fin {
                                reason: FinReason::Complete,
                            },
                        );
                        return;
                    }
                }
                LineRead::Eof => {
                    let mut guard = lock(shared);
                    (*guard).lost(Some(lease_id), &worker);
                    return;
                }
                LineRead::Failed => {
                    let mut guard = lock(shared);
                    (*guard).fault(Some(lease_id), &worker);
                    return;
                }
            }
        }
    }
}
