//! Fleet coordination: a work-stealing coordinator that farms sweep cells
//! out to TCP workers and incrementally merges their `kset-sweep v2`
//! fragments back into the sequential reference bytes.
//!
//! The paper's failure model — processes crash, messages go undelivered —
//! is exactly the failure model of a sweep fleet, and this module holds
//! the same line the sharded sweeps of PRs 4–5 hold: **any** execution
//! history, under **any** worker churn, either merges to a file
//! byte-identical to `sweep --seq` or fails loudly with a typed error.
//! No lost cells, no duplicated cells, no silent drift.
//!
//! The layering, from pure to imperative:
//!
//! - [`proto`] — the five-verb line protocol (`hello` / `lease` /
//!   `progress` / `done` / `fin`). Pure grammar, on the lint record path.
//! - [`merge`] — [`IncrementalMerge`]: out-of-order record assembly with
//!   validation on entry and in-order prefix streaming, certified at the
//!   end by [`crate::sweep::merge`]. Also on the record path.
//! - [`state`] — [`FleetState`]: leases, deadlines, reassignment, stale
//!   message discard. Pure (every method takes `now`), so the nasty races
//!   are plain unit tests.
//! - [`observe`] — [`FleetObserver`] hooks and [`FleetCounts`], in the
//!   mold of [`crate::observe`].
//! - [`coordinator`] / [`worker`] — the socket shells.
//!
//! The merge is the single source of truth: leases only schedule work,
//! and a record exists exactly when [`IncrementalMerge`] accepted it.
//! Everything a flaky network or a dying worker can produce — torn lines,
//! duplicate leases, stale `done`s, re-sent records — is either rejected
//! at a validation boundary or dropped as stale, and can never change the
//! output bytes.

pub mod coordinator;
pub mod merge;
pub mod observe;
pub mod proto;
pub mod state;
mod wire;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig};
pub use merge::{FleetMergeError, IncrementalMerge};
pub use observe::{FleetCounter, FleetCounts, FleetObserver, NoFleetObserver};
pub use proto::{BadGridId, FinReason, GridId, Message, ProtoError, PROTOCOL_MAGIC};
pub use state::{DoneOutcome, FleetFault, FleetState, Grant, LeaseParams, ProgressOutcome};
pub use worker::{run_worker, GridRejected, WorkerConfig, WorkerReport};

use std::fmt;

use crate::sweep::record::MergeError;

/// Any way a fleet run can fail. Every variant is a typed, printable
/// error — fleet code never panics on bad input, bad peers, or bad I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The [`GridId`] cannot be rendered on a protocol line.
    Grid(BadGridId),
    /// [`LeaseParams::cells`] was zero.
    BadLeaseParams,
    /// A resume record failed validation against the grid.
    Resume(FleetMergeError),
    /// The completed sweep failed the final coverage certification.
    Merge(MergeError),
    /// A socket operation failed (bind, connect, read, write).
    Io {
        /// What was being attempted.
        context: String,
        /// The rendered [`std::io::Error`].
        error: String,
    },
    /// The peer sent a line outside the protocol grammar.
    Proto(ProtoError),
    /// The peer hung up mid-conversation.
    Disconnected {
        /// Where in the conversation.
        context: String,
    },
    /// The worker's compute closure refused the leased grid.
    Rejected(GridRejected),
    /// A worker name that cannot be a protocol token.
    BadWorkerName {
        /// The offending name.
        name: String,
    },
}

impl FleetError {
    pub(crate) fn io(context: String, error: &std::io::Error) -> FleetError {
        FleetError::Io {
            context,
            error: error.to_string(),
        }
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Grid(e) => write!(f, "bad grid id: {e}"),
            FleetError::BadLeaseParams => write!(f, "lease size must be at least one cell"),
            FleetError::Resume(e) => write!(f, "resume record rejected: {e}"),
            FleetError::Merge(e) => write!(f, "final certification failed: {e}"),
            FleetError::Io { context, error } => write!(f, "{context}: {error}"),
            FleetError::Proto(e) => write!(f, "protocol error: {e}"),
            FleetError::Disconnected { context } => write!(f, "disconnected: {context}"),
            FleetError::Rejected(e) => write!(f, "{e}"),
            FleetError::BadWorkerName { name } => write!(
                f,
                "worker name must be one non-empty whitespace-free token, got {name:?}"
            ),
        }
    }
}

impl std::error::Error for FleetError {}
