//! The fleet wire protocol: line-oriented, space-delimited messages in the
//! grammar family of `textfmt.rs` and the `kset-sweep v2` record format.
//!
//! Every message is one `\n`-terminated line of whitespace-free tokens.
//! The five verbs:
//!
//! ```text
//! hello kset-fleet v1 worker <name>
//! lease <id> grid <name> seed <seed> axes <axes> total <total> range <a>..<b>
//! progress lease <id> cell <idx> n <n> f <f> k <k> seed 0x<16> digest 0x<16> [obs ...]
//! done lease <id> cells <count>
//! fin reason <complete|shutdown>
//! ```
//!
//! The tail of a `progress` line is exactly one [`CellRecord::render_line`]
//! — the protocol does not invent a second record grammar, so a record on
//! the wire and a record in a shard file can never drift apart. Parsing is
//! strict: any line that does not match a verb exactly is a
//! [`ProtoError`], and the coordinator treats that as a faulty worker, not
//! a recoverable hiccup.
//!
//! This module is deliberately pure (no sockets, no clocks): it is on the
//! `kset-lint` record path together with `merge.rs`, because a
//! nondeterministic rendering here would corrupt the byte-identity
//! invariant the whole fleet exists to preserve.

use std::fmt;
use std::ops::Range;

use crate::sweep::record::{CellRecord, FormatVersion, SweepHeader};
use crate::sweep::ShardSpec;

/// The protocol magic every worker announces in its `hello` line. Version
/// bumps here are breaking: a coordinator rejects any other magic.
pub const PROTOCOL_MAGIC: &str = "kset-fleet v1";

/// Identifies the grid a lease belongs to — enough for a worker to resolve
/// the grid in its own catalog *and verify it resolved the same grid* the
/// coordinator is sweeping (name, seed, axes signature, and cell count all
/// have to agree before a worker computes anything).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridId {
    /// Catalog name of the grid (one whitespace-free token).
    pub grid: String,
    /// The grid seed every cell seed derives from.
    pub grid_seed: u64,
    /// The axes signature (one whitespace-free token).
    pub axes: String,
    /// Total number of cells in the grid.
    pub total: usize,
}

impl GridId {
    /// Checks the invariants the wire grammar and [`SweepHeader::new`]
    /// require: `grid` and `axes` must be non-empty whitespace-free
    /// tokens. Parsed `GridId`s satisfy this by construction; hand-built
    /// ones are validated at [`FleetState::new`](super::FleetState::new).
    pub fn validate(&self) -> Result<(), BadGridId> {
        for (field, value) in [("grid", &self.grid), ("axes", &self.axes)] {
            if value.is_empty() || value.contains(char::is_whitespace) {
                return Err(BadGridId {
                    field,
                    value: value.clone(),
                });
            }
        }
        Ok(())
    }

    /// The `kset-sweep v2` header of the *full* grid file this fleet run
    /// produces. Callers must [`validate`](GridId::validate) first (the
    /// coordinator does, once, at construction).
    pub fn full_header(&self) -> SweepHeader {
        SweepHeader::new(
            self.grid.clone(),
            self.grid_seed,
            self.axes.clone(),
            self.total,
            ShardSpec::FULL,
        )
    }
}

/// A `grid`/`axes` token that cannot be rendered on one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadGridId {
    /// Which field is at fault (`"grid"` or `"axes"`).
    pub field: &'static str,
    /// The offending value.
    pub value: String,
}

impl fmt::Display for BadGridId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} must be one non-empty whitespace-free token, got {:?}",
            self.field, self.value
        )
    }
}

impl std::error::Error for BadGridId {}

/// Why the coordinator shut a conversation down (the `fin` payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinReason {
    /// Every cell of the grid has merged; there is no more work, ever.
    Complete,
    /// The coordinator is going away without a complete grid.
    Shutdown,
}

impl FinReason {
    fn token(self) -> &'static str {
        match self {
            FinReason::Complete => "complete",
            FinReason::Shutdown => "shutdown",
        }
    }
}

/// One protocol message (one line on the wire, without the newline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Worker → coordinator: first line of every conversation.
    Hello {
        /// Self-chosen worker name (one whitespace-free token), used only
        /// for reporting.
        worker: String,
    },
    /// Coordinator → worker: own these cells until the lease deadline.
    Lease {
        /// Coordinator-unique lease id.
        lease: u64,
        /// The grid the range indexes into.
        grid: GridId,
        /// The contiguous cell range leased.
        range: Range<usize>,
    },
    /// Worker → coordinator: one computed cell. Doubles as the heartbeat —
    /// each accepted record extends the lease deadline.
    Progress {
        /// The lease this cell was computed under.
        lease: u64,
        /// The computed record, exactly as it will appear in the file.
        record: CellRecord,
    },
    /// Worker → coordinator: the lease's range is fully delivered.
    Done {
        /// The finished lease.
        lease: u64,
        /// How many cells the worker sent under it (cross-checked).
        cells: usize,
    },
    /// Coordinator → worker: conversation over, hang up.
    Fin {
        /// Why.
        reason: FinReason,
    },
}

impl Message {
    /// Renders the message as one line (no trailing newline) — the exact
    /// inverse of [`Message::parse`].
    pub fn render(&self) -> String {
        match self {
            Message::Hello { worker } => {
                format!("hello {PROTOCOL_MAGIC} worker {worker}")
            }
            Message::Lease { lease, grid, range } => format!(
                "lease {} grid {} seed {} axes {} total {} range {}..{}",
                lease, grid.grid, grid.grid_seed, grid.axes, grid.total, range.start, range.end
            ),
            Message::Progress { lease, record } => {
                format!("progress lease {} {}", lease, record.render_line())
            }
            Message::Done { lease, cells } => {
                format!("done lease {lease} cells {cells}")
            }
            Message::Fin { reason } => format!("fin reason {}", reason.token()),
        }
    }

    /// Parses one line (newline already stripped). Strict: unknown verbs,
    /// missing tokens, non-numeric fields, and a wrong `hello` magic are
    /// all errors — a fleet conversation has no lines worth guessing at.
    pub fn parse(line: &str) -> Result<Message, ProtoError> {
        let malformed = || ProtoError::Malformed {
            line: line.to_string(),
        };
        let t: Vec<&str> = line.split_whitespace().collect();
        match t[..] {
            ["hello", magic_a, magic_b, "worker", worker] => {
                let magic = format!("{magic_a} {magic_b}");
                if magic != PROTOCOL_MAGIC {
                    return Err(ProtoError::BadMagic { found: magic });
                }
                Ok(Message::Hello {
                    worker: worker.to_string(),
                })
            }
            ["lease", lease, "grid", grid, "seed", seed, "axes", axes, "total", total, "range", range] =>
            {
                let (start, end) = range
                    .split_once("..")
                    .and_then(|(s, e)| Some((s.parse::<usize>().ok()?, e.parse::<usize>().ok()?)))
                    .ok_or_else(malformed)?;
                Ok(Message::Lease {
                    lease: lease.parse().map_err(|_| malformed())?,
                    grid: GridId {
                        grid: grid.to_string(),
                        grid_seed: seed.parse().map_err(|_| malformed())?,
                        axes: axes.to_string(),
                        total: total.parse().map_err(|_| malformed())?,
                    },
                    range: start..end,
                })
            }
            ["progress", "lease", lease, "cell", ..] => {
                // The record tail is canonical single-spaced `render_line`
                // output; re-joining the tokens reconstructs it faithfully.
                let tail = t[3..].join(" ");
                let record =
                    CellRecord::parse_line(&tail, FormatVersion::V2).map_err(|_| malformed())?;
                Ok(Message::Progress {
                    lease: lease.parse().map_err(|_| malformed())?,
                    record,
                })
            }
            ["done", "lease", lease, "cells", cells] => Ok(Message::Done {
                lease: lease.parse().map_err(|_| malformed())?,
                cells: cells.parse().map_err(|_| malformed())?,
            }),
            ["fin", "reason", "complete"] => Ok(Message::Fin {
                reason: FinReason::Complete,
            }),
            ["fin", "reason", "shutdown"] => Ok(Message::Fin {
                reason: FinReason::Shutdown,
            }),
            _ => Err(malformed()),
        }
    }
}

/// Why a protocol line was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The line does not match any message grammar (including torn or
    /// truncated lines — a digest cut mid-hex still reads as valid hex,
    /// so partial lines must never be salvaged).
    Malformed {
        /// The offending line.
        line: String,
    },
    /// A `hello` announcing a protocol this coordinator does not speak.
    BadMagic {
        /// The magic the peer announced.
        found: String,
    },
    /// The line was not valid UTF-8.
    NotUtf8,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Malformed { line } => write!(f, "malformed fleet line {line:?}"),
            ProtoError::BadMagic { found } => {
                write!(f, "peer speaks {found:?}, expected {PROTOCOL_MAGIC:?}")
            }
            ProtoError::NotUtf8 => write!(f, "fleet line is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::record::Observation;

    fn grid_id() -> GridId {
        GridId {
            grid: "border".to_string(),
            grid_seed: 42,
            axes: "theorem8-border:kn=(k+1)f".to_string(),
            total: 9,
        }
    }

    fn sample_record() -> CellRecord {
        CellRecord {
            index: 3,
            n: 6,
            f: 2,
            k: 1,
            seed: 0x1234_5678_9abc_def0,
            digest: 0x0fed_cba9_8765_4321,
            obs: Some(Observation::Decisions(vec![Some(0), None])),
        }
    }

    #[test]
    fn every_message_round_trips() {
        let messages = [
            Message::Hello {
                worker: "w-1".to_string(),
            },
            Message::Lease {
                lease: 7,
                grid: grid_id(),
                range: 3..6,
            },
            Message::Progress {
                lease: 7,
                record: sample_record(),
            },
            Message::Done { lease: 7, cells: 3 },
            Message::Fin {
                reason: FinReason::Complete,
            },
            Message::Fin {
                reason: FinReason::Shutdown,
            },
        ];
        for msg in messages {
            let line = msg.render();
            assert!(!line.contains('\n'), "one line each: {line:?}");
            assert_eq!(Message::parse(&line), Ok(msg), "{line:?}");
        }
    }

    #[test]
    fn progress_tail_is_exactly_a_record_line() {
        let record = sample_record();
        let line = Message::Progress {
            lease: 9,
            record: record.clone(),
        }
        .render();
        assert_eq!(line, format!("progress lease 9 {}", record.render_line()));
    }

    #[test]
    fn torn_and_garbage_lines_are_malformed() {
        for torn in [
            "",
            "progress lease 0 cell 3 n 6 f",
            "progress lease 0 cell 3 n 6 f 2 k 1 seed 0x12 digest 0x3", // short hex is fine...
            "lease 1 grid g seed 42 axes a total 9 range 3..",
            "done lease 1 cells",
            "fin reason later",
            "begin transaction",
            "hello kset-fleet v1 worker w extra",
        ] {
            match Message::parse(torn) {
                Err(ProtoError::Malformed { .. }) => {}
                // `0x12` IS valid hex — a short token still parses; the
                // coordinator's seed re-derivation catches that lie.
                Ok(Message::Progress { .. }) if torn.contains("0x12") => {}
                other => panic!("{torn:?} must not parse cleanly: {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_magic_is_its_own_error() {
        assert_eq!(
            Message::parse("hello kset-fleet v9 worker w"),
            Err(ProtoError::BadMagic {
                found: "kset-fleet v9".to_string()
            })
        );
    }

    #[test]
    fn grid_id_validation_rejects_bad_tokens() {
        let mut id = grid_id();
        assert_eq!(id.validate(), Ok(()));
        id.axes = "two tokens".to_string();
        assert!(id.validate().is_err());
        id.axes = String::new();
        assert!(id.validate().is_err());
    }
}
