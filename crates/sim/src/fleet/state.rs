//! The coordinator's lease/reassignment state machine, kept pure: every
//! method takes the current [`Instant`] as an argument and nothing here
//! reads a clock, touches a socket, or sleeps. The socket shell in
//! `coordinator.rs` is a thin driver around this type, which is what makes
//! the duplicate-lease, late-DONE, and expiry races deterministic to test
//! — the unit tests *choose* `now`.
//!
//! State machine (per lease):
//!
//! ```text
//!   pending range --grant--> active --all progress + done--> completed
//!        ^                     |
//!        |   deadline passes / | worker lost / protocol fault
//!        +--- remainder -------+
//! ```
//!
//! Two invariants do all the safety work:
//!
//! - Progress within a lease must arrive **in index order**, so an
//!   expired lease's unfinished remainder is exactly
//!   `range.start + received .. range.end` — requeueing it loses nothing
//!   and duplicates nothing.
//! - A message naming a lease that is no longer active is **stale**: it is
//!   counted and dropped, never merged. A reassigned-and-completed range
//!   therefore cannot be double-merged no matter how late the original
//!   worker's `done` straggles in.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::ops::Range;
use std::time::{Duration, Instant};

use super::merge::{FleetMergeError, IncrementalMerge};
use super::observe::{FleetCounts, FleetObserver};
use super::proto::{GridId, Message};
use super::FleetError;
use crate::sweep::record::{CellRecord, MergeError, ShardFile, SweepHeader};

/// How leases are cut and when they expire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseParams {
    /// Maximum cells per lease (≥ 1). Smaller leases steal work at a
    /// finer grain; larger ones amortize round-trips.
    pub cells: usize,
    /// How long a lease may go without an accepted `progress` record
    /// before its remainder is reassigned. Must comfortably exceed the
    /// slowest single cell's compute time, or healthy workers get
    /// reassigned mid-cell (correct, but wasteful).
    pub timeout: Duration,
}

#[derive(Debug)]
struct ActiveLease {
    range: Range<usize>,
    received: usize,
    worker: String,
    deadline: Instant,
}

impl ActiveLease {
    fn remainder(&self) -> Range<usize> {
        self.range.start + self.received..self.range.end
    }
}

/// What [`FleetState::grant`] handed out.
#[derive(Debug, PartialEq, Eq)]
pub enum Grant {
    /// A lease; send this [`Message::Lease`] to the worker.
    Lease(Message),
    /// No work right now, but outstanding leases may still expire and
    /// requeue — ask again after a tick.
    Wait,
    /// Every cell has merged; send `fin` and hang up.
    Complete,
}

/// What happened to one `progress` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressOutcome {
    /// Accepted and merged; the lease deadline was extended.
    Merged,
    /// The lease is no longer active (expired and reassigned, or simply
    /// unknown); the record was dropped, not merged.
    Stale,
}

/// What happened to a `done` message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoneOutcome {
    /// The lease delivered its whole range and is retired.
    Completed,
    /// The lease is no longer active; the `done` was dropped.
    Stale,
}

/// A worker did something an honest worker cannot do. The shell responds
/// by failing the lease and closing the connection; the sweep itself is
/// unharmed (the lease's remainder is requeued).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetFault {
    /// Progress within a lease must walk the range in order.
    UnexpectedIndex {
        /// The lease at fault.
        lease: u64,
        /// The next index the lease owes.
        expected: usize,
        /// The index the record carried.
        found: usize,
    },
    /// The record failed merge validation (bad index, lying seed, or a
    /// duplicate — see [`FleetMergeError`]).
    Merge(FleetMergeError),
    /// A `done` whose cell count disagrees with what the lease received.
    DoneMismatch {
        /// The lease at fault.
        lease: u64,
        /// The count the worker declared.
        declared: usize,
        /// The count the coordinator accepted.
        received: usize,
    },
}

impl fmt::Display for FleetFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetFault::UnexpectedIndex {
                lease,
                expected,
                found,
            } => write!(
                f,
                "lease {lease}: expected cell {expected} next, got {found}"
            ),
            FleetFault::Merge(e) => write!(f, "record rejected: {e}"),
            FleetFault::DoneMismatch {
                lease,
                declared,
                received,
            } => write!(
                f,
                "lease {lease}: done declares {declared} cells, coordinator \
                 accepted {received}"
            ),
        }
    }
}

impl std::error::Error for FleetFault {}

/// The coordinator's complete scheduling + merging state. See the module
/// docs for the state machine; see `coordinator.rs` for the socket shell
/// that drives it.
#[derive(Debug)]
pub struct FleetState {
    grid: GridId,
    merge: IncrementalMerge,
    params: LeaseParams,
    pending: VecDeque<Range<usize>>,
    active: BTreeMap<u64, ActiveLease>,
    next_lease: u64,
    counts: FleetCounts,
}

impl FleetState {
    /// A fresh state for `grid`, optionally seeded with `resume` records
    /// recovered from a partial file (each is validated like any other
    /// record; only the still-missing runs become pending leases).
    pub fn new(
        grid: GridId,
        params: LeaseParams,
        resume: Vec<CellRecord>,
    ) -> Result<FleetState, FleetError> {
        grid.validate().map_err(FleetError::Grid)?;
        if params.cells == 0 {
            return Err(FleetError::BadLeaseParams);
        }
        let mut merge = IncrementalMerge::new(&grid);
        for record in resume {
            merge.insert(record).map_err(FleetError::Resume)?;
        }
        let mut pending = VecDeque::new();
        for run in merge.owed_runs() {
            let mut start = run.start;
            while start < run.end {
                let end = run.end.min(start + params.cells);
                pending.push_back(start..end);
                start = end;
            }
        }
        Ok(FleetState {
            grid,
            merge,
            params,
            pending,
            active: BTreeMap::new(),
            next_lease: 0,
            counts: FleetCounts::default(),
        })
    }

    /// The header of the file this fleet is assembling.
    pub fn header(&self) -> &SweepHeader {
        self.merge.header()
    }

    /// Event counts so far (also mirrored to the observer as events).
    pub fn counts(&self) -> FleetCounts {
        self.counts
    }

    /// Whether every cell of the grid has merged. Outstanding leases do
    /// not block completion — once all cells are in, their messages are
    /// stale by definition.
    pub fn is_complete(&self) -> bool {
        self.merge.is_complete()
    }

    /// Records a successful `hello`.
    pub fn worker_connected(&mut self, worker: &str, obs: &mut dyn FleetObserver) {
        self.counts.workers += 1;
        obs.on_worker_connected(worker);
    }

    /// Hands `worker` the next pending range, if any.
    pub fn grant(&mut self, worker: &str, now: Instant, obs: &mut dyn FleetObserver) -> Grant {
        if self.is_complete() {
            return Grant::Complete;
        }
        let Some(range) = self.pending.pop_front() else {
            return Grant::Wait;
        };
        let lease = self.next_lease;
        self.next_lease += 1;
        self.active.insert(
            lease,
            ActiveLease {
                range: range.clone(),
                received: 0,
                worker: worker.to_string(),
                deadline: now + self.params.timeout,
            },
        );
        self.counts.leases += 1;
        obs.on_lease_granted(lease, worker, &range);
        Grant::Lease(Message::Lease {
            lease,
            grid: self.grid.clone(),
            range,
        })
    }

    /// Accepts (or rejects, or drops as stale) one `progress` record.
    pub fn progress(
        &mut self,
        lease: u64,
        record: CellRecord,
        now: Instant,
        obs: &mut dyn FleetObserver,
    ) -> Result<ProgressOutcome, FleetFault> {
        let Some(active) = self.active.get_mut(&lease) else {
            self.counts.stale += 1;
            obs.on_stale_dropped(lease);
            return Ok(ProgressOutcome::Stale);
        };
        let expected = active.range.start + active.received;
        if record.index != expected {
            return Err(FleetFault::UnexpectedIndex {
                lease,
                expected,
                found: record.index,
            });
        }
        let index = record.index;
        self.merge.insert(record).map_err(FleetFault::Merge)?;
        active.received += 1;
        active.deadline = now + self.params.timeout;
        self.counts.merged += 1;
        obs.on_cell_merged(index);
        Ok(ProgressOutcome::Merged)
    }

    /// Retires a lease whose worker declared it finished.
    pub fn done(
        &mut self,
        lease: u64,
        cells: usize,
        obs: &mut dyn FleetObserver,
    ) -> Result<DoneOutcome, FleetFault> {
        let Some(active) = self.active.get(&lease) else {
            self.counts.stale += 1;
            obs.on_stale_dropped(lease);
            return Ok(DoneOutcome::Stale);
        };
        if cells != active.received || active.received != active.range.len() {
            return Err(FleetFault::DoneMismatch {
                lease,
                declared: cells,
                received: active.received,
            });
        }
        self.active.remove(&lease);
        self.counts.completed += 1;
        obs.on_lease_completed(lease);
        Ok(DoneOutcome::Completed)
    }

    /// Reaps every lease whose deadline has passed, requeueing unfinished
    /// remainders at the *front* of the queue (stolen work is the most
    /// urgent work). Returns how many leases expired.
    pub fn expire_due(&mut self, now: Instant, obs: &mut dyn FleetObserver) -> usize {
        let due: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, l)| l.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in &due {
            if let Some(lease) = self.active.remove(id) {
                let remainder = lease.remainder();
                self.counts.expired += 1;
                obs.on_lease_expired(*id, &lease.worker, &remainder);
                if !remainder.is_empty() {
                    self.pending.push_front(remainder);
                }
            }
        }
        due.len()
    }

    /// The worker behind `lease` disconnected (EOF, write error). Requeues
    /// the unfinished remainder immediately.
    pub fn worker_lost(&mut self, lease: Option<u64>, worker: &str, obs: &mut dyn FleetObserver) {
        self.counts.lost += 1;
        obs.on_worker_lost(worker);
        self.release(lease);
    }

    /// The worker behind `lease` violated the protocol (bad line, bad
    /// record, bad counts). Requeues the unfinished remainder immediately;
    /// the shell closes the connection.
    pub fn protocol_fault(
        &mut self,
        lease: Option<u64>,
        worker: &str,
        obs: &mut dyn FleetObserver,
    ) {
        self.counts.faults += 1;
        obs.on_protocol_fault(worker);
        self.release(lease);
    }

    fn release(&mut self, lease: Option<u64>) {
        if let Some(id) = lease {
            if let Some(lease) = self.active.remove(&id) {
                let remainder = lease.remainder();
                if !remainder.is_empty() {
                    self.pending.push_front(remainder);
                }
            }
        }
    }

    /// Streams the not-yet-emitted contiguous prefix of merged records
    /// (see [`IncrementalMerge::drain_ready`]).
    pub fn drain_ready(&mut self, emit: impl FnMut(&CellRecord)) {
        self.merge.drain_ready(emit);
    }

    /// Certifies the completed sweep through the [`crate::sweep::merge`]
    /// coverage checker and returns the file plus final counts.
    pub fn finish(
        self,
        obs: &mut dyn FleetObserver,
    ) -> Result<(ShardFile, FleetCounts), MergeError> {
        let file = self.merge.finish()?;
        obs.on_complete(file.records.len());
        Ok((file, self.counts))
    }
}

#[cfg(test)]
mod tests {
    use super::super::observe::NoFleetObserver;
    use super::*;
    use crate::sweep::cell_seed;

    fn grid_id(total: usize) -> GridId {
        GridId {
            grid: "synthetic".to_string(),
            grid_seed: 11,
            axes: "unit".to_string(),
            total,
        }
    }

    fn record(grid: &GridId, index: usize) -> CellRecord {
        CellRecord {
            index,
            n: 4,
            f: 1,
            k: 1,
            seed: cell_seed(grid.grid_seed, index),
            digest: 0x2000 + index as u64,
            obs: None,
        }
    }

    fn state(total: usize, cells: usize) -> FleetState {
        FleetState::new(
            grid_id(total),
            LeaseParams {
                cells,
                timeout: Duration::from_millis(100),
            },
            Vec::new(),
        )
        .unwrap()
    }

    fn lease_of(grant: Grant) -> (u64, Range<usize>) {
        match grant {
            Grant::Lease(Message::Lease { lease, range, .. }) => (lease, range),
            other => panic!("expected a lease, got {other:?}"),
        }
    }

    #[test]
    fn grants_cover_the_grid_in_chunks() {
        let mut s = state(7, 3);
        let obs = &mut NoFleetObserver;
        let t0 = Instant::now();
        let (_, r0) = lease_of(s.grant("a", t0, obs));
        let (_, r1) = lease_of(s.grant("b", t0, obs));
        let (_, r2) = lease_of(s.grant("a", t0, obs));
        assert_eq!((r0, r1, r2), (0..3, 3..6, 6..7));
        assert_eq!(s.grant("b", t0, obs), Grant::Wait);
    }

    #[test]
    fn expiry_requeues_exactly_the_remainder() {
        let mut s = state(6, 3);
        let obs = &mut NoFleetObserver;
        let t0 = Instant::now();
        let (id, range) = lease_of(s.grant("slow", t0, obs));
        assert_eq!(range, 0..3);
        let grid = grid_id(6);
        // One cell lands, then the worker goes quiet past the deadline.
        s.progress(id, record(&grid, 0), t0, obs).unwrap();
        assert_eq!(s.expire_due(t0 + Duration::from_millis(99), obs), 0);
        assert_eq!(s.expire_due(t0 + Duration::from_millis(101), obs), 1);
        // The remainder 1..3 is requeued at the FRONT.
        let (_, stolen) = lease_of(s.grant("fast", t0, obs));
        assert_eq!(stolen, 1..3);
        assert_eq!(s.counts().expired, 1);
    }

    #[test]
    fn progress_extends_the_deadline() {
        let mut s = state(3, 3);
        let obs = &mut NoFleetObserver;
        let t0 = Instant::now();
        let (id, _) = lease_of(s.grant("w", t0, obs));
        let grid = grid_id(3);
        let t1 = t0 + Duration::from_millis(90);
        s.progress(id, record(&grid, 0), t1, obs).unwrap();
        // t0's deadline (t0+100) has passed, but progress at t1 renewed it.
        assert_eq!(s.expire_due(t0 + Duration::from_millis(150), obs), 0);
        assert_eq!(s.expire_due(t1 + Duration::from_millis(101), obs), 1);
    }

    #[test]
    fn stale_progress_and_late_done_are_dropped_not_merged() {
        let mut s = state(3, 3);
        let obs = &mut NoFleetObserver;
        let t0 = Instant::now();
        let grid = grid_id(3);
        let (old, _) = lease_of(s.grant("slow", t0, obs));
        s.progress(old, record(&grid, 0), t0, obs).unwrap();
        s.expire_due(t0 + Duration::from_secs(1), obs);

        // The range is reassigned and completed by a healthy worker.
        let (new, range) = lease_of(s.grant("fast", t0, obs));
        assert_eq!(range, 1..3);
        for i in range {
            assert_eq!(
                s.progress(new, record(&grid, i), t0, obs),
                Ok(ProgressOutcome::Merged)
            );
        }
        assert_eq!(s.done(new, 2, obs), Ok(DoneOutcome::Completed));
        assert!(s.is_complete());

        // The original worker straggles back: every message is stale.
        assert_eq!(
            s.progress(old, record(&grid, 1), t0, obs),
            Ok(ProgressOutcome::Stale)
        );
        assert_eq!(s.done(old, 3, obs), Ok(DoneOutcome::Stale));
        assert_eq!(s.counts().stale, 2);
        assert_eq!(s.counts().merged, 3, "the stale record did not merge");
        let (file, _) = s.finish(obs).unwrap();
        assert_eq!(file.records.len(), 3);
    }

    #[test]
    fn duplicate_lease_grant_cannot_double_merge() {
        // The "duplicate lease" race: a lease expires while its worker is
        // alive; the worker keeps sending under the old id while the new
        // holder works the same range. Only the active id merges.
        let mut s = state(2, 2);
        let obs = &mut NoFleetObserver;
        let t0 = Instant::now();
        let grid = grid_id(2);
        let (old, _) = lease_of(s.grant("a", t0, obs));
        s.expire_due(t0 + Duration::from_secs(1), obs);
        let (new, _) = lease_of(s.grant("b", t0, obs));
        assert_ne!(old, new, "lease ids are never reused");
        s.progress(new, record(&grid, 0), t0, obs).unwrap();
        assert_eq!(
            s.progress(old, record(&grid, 0), t0, obs),
            Ok(ProgressOutcome::Stale)
        );
        s.progress(new, record(&grid, 1), t0, obs).unwrap();
        assert!(s.is_complete());
    }

    #[test]
    fn out_of_order_progress_is_a_fault() {
        let mut s = state(3, 3);
        let obs = &mut NoFleetObserver;
        let t0 = Instant::now();
        let grid = grid_id(3);
        let (id, _) = lease_of(s.grant("w", t0, obs));
        assert_eq!(
            s.progress(id, record(&grid, 1), t0, obs),
            Err(FleetFault::UnexpectedIndex {
                lease: id,
                expected: 0,
                found: 1
            })
        );
        // The shell then fails the lease; the whole range requeues.
        s.protocol_fault(Some(id), "w", obs);
        let (_, range) = lease_of(s.grant("w2", t0, obs));
        assert_eq!(range, 0..3);
    }

    #[test]
    fn done_count_mismatch_is_a_fault() {
        let mut s = state(2, 2);
        let obs = &mut NoFleetObserver;
        let t0 = Instant::now();
        let grid = grid_id(2);
        let (id, _) = lease_of(s.grant("w", t0, obs));
        s.progress(id, record(&grid, 0), t0, obs).unwrap();
        assert!(matches!(
            s.done(id, 1, obs),
            Err(FleetFault::DoneMismatch { .. })
        ));
    }

    #[test]
    fn lying_seed_is_a_fault() {
        let mut s = state(2, 2);
        let obs = &mut NoFleetObserver;
        let t0 = Instant::now();
        let grid = grid_id(2);
        let (id, _) = lease_of(s.grant("w", t0, obs));
        let mut lying = record(&grid, 0);
        lying.seed ^= 0xdead;
        assert!(matches!(
            s.progress(id, lying, t0, obs),
            Err(FleetFault::Merge(FleetMergeError::SeedMismatch { .. }))
        ));
    }

    #[test]
    fn resume_leases_only_owed_cells() {
        let grid = grid_id(5);
        let resume: Vec<CellRecord> = (0..2).map(|i| record(&grid, i)).collect();
        let mut s = FleetState::new(
            grid.clone(),
            LeaseParams {
                cells: 10,
                timeout: Duration::from_millis(100),
            },
            resume,
        )
        .unwrap();
        let obs = &mut NoFleetObserver;
        let (_, range) = lease_of(s.grant("w", Instant::now(), obs));
        assert_eq!(range, 2..5, "only the owed tail is leased");
    }

    #[test]
    fn fully_seeded_resume_is_complete_before_any_worker() {
        let grid = grid_id(3);
        let resume: Vec<CellRecord> = (0..3).map(|i| record(&grid, i)).collect();
        let mut s = FleetState::new(
            grid,
            LeaseParams {
                cells: 2,
                timeout: Duration::from_millis(100),
            },
            resume,
        )
        .unwrap();
        assert!(s.is_complete());
        assert_eq!(
            s.grant("w", Instant::now(), &mut NoFleetObserver),
            Grant::Complete
        );
    }

    #[test]
    fn bad_lease_params_and_bad_grid_are_typed_errors() {
        let params = LeaseParams {
            cells: 0,
            timeout: Duration::from_millis(1),
        };
        assert!(matches!(
            FleetState::new(grid_id(1), params, Vec::new()),
            Err(FleetError::BadLeaseParams)
        ));
        let mut bad = grid_id(1);
        bad.axes = "two tokens".to_string();
        let params = LeaseParams {
            cells: 1,
            timeout: Duration::from_millis(1),
        };
        assert!(matches!(
            FleetState::new(bad, params, Vec::new()),
            Err(FleetError::Grid(_))
        ));
    }
}
