//! Fleet-side observation, in the mold of [`crate::observe`]: a trait of
//! typed per-event hooks with no-op defaults, a do-nothing observer for
//! callers that only want the final counts, and a counting observer.
//!
//! Observation is strictly *read-only reporting*: the state machine in
//! `state.rs` behaves identically under any observer, and the byte output
//! of a fleet sweep never depends on what an observer does.

use std::ops::Range;

/// Typed hooks for fleet coordination events. All methods default to
/// no-ops; implement only what you care about. Implementations must be
/// `Send` — the coordinator invokes the observer from connection-handler
/// threads (under the state lock, so callbacks are serialized).
pub trait FleetObserver: Send {
    /// A worker completed its `hello`.
    fn on_worker_connected(&mut self, worker: &str) {
        let _ = worker;
    }
    /// A lease was granted to `worker` for `range`.
    fn on_lease_granted(&mut self, lease: u64, worker: &str, range: &Range<usize>) {
        let _ = (lease, worker, range);
    }
    /// One cell record was accepted and merged.
    fn on_cell_merged(&mut self, index: usize) {
        let _ = index;
    }
    /// A lease delivered its whole range and retired cleanly.
    fn on_lease_completed(&mut self, lease: u64) {
        let _ = lease;
    }
    /// A lease deadline passed; `remainder` goes back to the queue.
    fn on_lease_expired(&mut self, lease: u64, worker: &str, remainder: &Range<usize>) {
        let _ = (lease, worker, remainder);
    }
    /// A message named a lease that is no longer active and was dropped.
    fn on_stale_dropped(&mut self, lease: u64) {
        let _ = lease;
    }
    /// A worker's connection ended while it still mattered.
    fn on_worker_lost(&mut self, worker: &str) {
        let _ = worker;
    }
    /// A worker violated the protocol and was cut off.
    fn on_protocol_fault(&mut self, worker: &str) {
        let _ = worker;
    }
    /// Every cell of the grid has merged.
    fn on_complete(&mut self, cells: usize) {
        let _ = cells;
    }
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFleetObserver;

impl FleetObserver for NoFleetObserver {}

/// Monotonic tallies of fleet events — the coordinator's progress report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCounts {
    /// Workers that completed `hello`.
    pub workers: u64,
    /// Leases granted (including re-grants of stolen ranges).
    pub leases: u64,
    /// Leases retired by a matching `done`.
    pub completed: u64,
    /// Leases whose deadline passed (remainder requeued).
    pub expired: u64,
    /// Cell records accepted and merged.
    pub merged: u64,
    /// Stale messages (dead lease ids) dropped without merging.
    pub stale: u64,
    /// Worker connections that ended early.
    pub lost: u64,
    /// Protocol violations that cut a worker off.
    pub faults: u64,
}

/// A [`FleetObserver`] that counts every event into [`FleetCounts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetCounter {
    /// The tallies so far.
    pub counts: FleetCounts,
}

impl FleetObserver for FleetCounter {
    fn on_worker_connected(&mut self, _worker: &str) {
        self.counts.workers += 1;
    }
    fn on_lease_granted(&mut self, _lease: u64, _worker: &str, _range: &Range<usize>) {
        self.counts.leases += 1;
    }
    fn on_cell_merged(&mut self, _index: usize) {
        self.counts.merged += 1;
    }
    fn on_lease_completed(&mut self, _lease: u64) {
        self.counts.completed += 1;
    }
    fn on_lease_expired(&mut self, _lease: u64, _worker: &str, _remainder: &Range<usize>) {
        self.counts.expired += 1;
    }
    fn on_stale_dropped(&mut self, _lease: u64) {
        self.counts.stale += 1;
    }
    fn on_worker_lost(&mut self, _worker: &str) {
        self.counts.lost += 1;
    }
    fn on_protocol_fault(&mut self, _worker: &str) {
        self.counts.faults += 1;
    }
}
