//! The fleet worker: connect, hello, then loop — take a lease, stream one
//! `progress` record per computed cell, declare `done`, repeat until the
//! coordinator says `fin`.
//!
//! The worker is grid-agnostic: the `compute` closure owns catalog
//! resolution (and must *reject* a [`GridId`] it cannot faithfully
//! reproduce — a worker computing the wrong grid is caught again
//! coordinator-side by seed re-derivation, but rejecting early is
//! cheaper and names the reason).
//!
//! Fault injection for the conformance suites and the CI chaos gate:
//! [`WorkerConfig::fail_after`] makes the worker drop its connection
//! cold — no goodbye, mid-lease — after computing that many cells
//! lifetime, which is exactly what a crash looks like to the
//! coordinator.

use std::fmt;
use std::io::BufReader;
use std::net::TcpStream;

use super::proto::{GridId, Message, ProtoError};
use super::wire::{read_line, write_line, LineRead};
use super::FleetError;
use crate::sweep::record::CellRecord;

/// Worker identity and fault injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerConfig {
    /// Self-chosen name (one non-empty whitespace-free token), used only
    /// in coordinator-side reporting.
    pub name: String,
    /// If set, the worker abruptly drops its connection after computing
    /// this many cells in total — `Some(0)` dies holding a fresh lease
    /// before sending any progress.
    pub fail_after: Option<usize>,
}

impl WorkerConfig {
    /// A healthy worker named `name`.
    pub fn new(name: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            name: name.into(),
            fail_after: None,
        }
    }
}

/// What a worker did before returning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Leases accepted.
    pub leases: usize,
    /// Cells computed *and delivered*.
    pub cells: usize,
    /// Whether the run ended by [`WorkerConfig::fail_after`] injection.
    pub injected_failure: bool,
}

/// The compute closure refused a [`GridId`] (unknown grid, wrong seed or
/// axes signature, index out of range — anything it cannot faithfully
/// reproduce).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridRejected {
    /// Why, for the human reading the worker's exit.
    pub reason: String,
}

impl fmt::Display for GridRejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grid rejected: {}", self.reason)
    }
}

impl std::error::Error for GridRejected {}

/// Runs one worker to completion against the coordinator at `addr`.
///
/// Returns the report when the coordinator says `fin` (or when an
/// injected failure triggers — the only case where `injected_failure` is
/// set). An unreachable address, a mid-conversation disconnect, and a
/// rejected grid are all typed [`FleetError`]s, never panics.
pub fn run_worker<F>(
    addr: &str,
    config: &WorkerConfig,
    mut compute: F,
) -> Result<WorkerReport, FleetError>
where
    F: FnMut(&GridId, usize) -> Result<CellRecord, GridRejected>,
{
    if config.name.is_empty() || config.name.contains(char::is_whitespace) {
        return Err(FleetError::BadWorkerName {
            name: config.name.clone(),
        });
    }
    let mut stream =
        TcpStream::connect(addr).map_err(|e| FleetError::io(format!("connect {addr}"), &e))?;
    let _ = stream.set_nodelay(true);
    let clone = stream
        .try_clone()
        .map_err(|e| FleetError::io("clone stream".to_string(), &e))?;
    let mut reader = BufReader::new(clone);
    let io = |context: &str| {
        let context = context.to_string();
        move |e: std::io::Error| FleetError::io(context, &e)
    };
    write_line(
        &mut stream,
        &Message::Hello {
            worker: config.name.clone(),
        },
    )
    .map_err(io("send hello"))?;

    let mut report = WorkerReport::default();
    let mut buf = Vec::new();
    loop {
        let line = match read_line(&mut reader, &mut buf) {
            LineRead::Line(line) => line,
            LineRead::Timeout => continue,
            LineRead::Eof => {
                return Err(FleetError::Disconnected {
                    context: "coordinator hung up without fin".to_string(),
                });
            }
            LineRead::Failed => {
                return Err(FleetError::Disconnected {
                    context: "stream failed mid-conversation".to_string(),
                });
            }
        };
        match Message::parse(&line).map_err(FleetError::Proto)? {
            Message::Lease { lease, grid, range } => {
                report.leases += 1;
                let mut sent = 0;
                for index in range {
                    if Some(report.cells) == config.fail_after {
                        // Crash: drop the connection cold, mid-lease.
                        report.injected_failure = true;
                        return Ok(report);
                    }
                    let record = compute(&grid, index).map_err(FleetError::Rejected)?;
                    write_line(&mut stream, &Message::Progress { lease, record })
                        .map_err(io("send progress"))?;
                    report.cells += 1;
                    sent += 1;
                }
                write_line(&mut stream, &Message::Done { lease, cells: sent })
                    .map_err(io("send done"))?;
            }
            Message::Fin { .. } => return Ok(report),
            Message::Hello { .. } | Message::Progress { .. } | Message::Done { .. } => {
                return Err(FleetError::Proto(ProtoError::Malformed { line }));
            }
        }
    }
}
