//! Regression tests for the explorer's fingerprint dedup after the
//! `ProcessSet` migration: state fingerprints stay schedule-confluent, the
//! dedup structure (states expanded / terminals) is pinned for a fixed
//! exploration, and the counts are independent of how equivalent
//! configurations were reached.

use kset_sim::explore::{explore, Branching, ExploreConfig};
use kset_sim::sched::Delivery;
use kset_sim::{
    CrashPlan, Effects, Envelope, Process, ProcessId, ProcessInfo, ProcessSet, Simulation,
};

/// Broadcast once, decide the minimum value heard after hearing everyone —
/// a deterministic algorithm whose state includes a ProcessSet (the heard
/// set), so fingerprints cover the migrated representation.
#[derive(Debug, Clone, Hash)]
struct MinBarrier {
    n: usize,
    heard: ProcessSet,
    min: u64,
    sent: bool,
}

impl Process for MinBarrier {
    type Msg = u64;
    type Input = u64;
    type Output = u64;
    type Fd = ();

    fn init(info: ProcessInfo, input: u64) -> Self {
        MinBarrier {
            n: info.n,
            heard: ProcessSet::singleton(info.id),
            min: input,
            sent: false,
        }
    }

    fn step(
        &mut self,
        delivered: &[Envelope<u64>],
        _fd: Option<&()>,
        effects: &mut Effects<u64, u64>,
    ) {
        if !self.sent {
            self.sent = true;
            effects.broadcast_others(self.min);
        }
        for env in delivered {
            self.heard.insert(env.src);
            self.min = self.min.min(env.payload);
        }
        if self.heard.len() == self.n {
            effects.decide(self.min);
        }
    }
}

fn sim(n: usize) -> Simulation<MinBarrier, kset_sim::NoOracle> {
    Simulation::new(
        (0..n as u64).map(|v| v * 10 + 3).collect(),
        CrashPlan::none(),
    )
}

#[test]
fn fingerprints_are_schedule_confluent() {
    // The dedup invariant: configurations reached through reordered
    // independent steps fingerprint identically.
    let mut a = sim(3);
    let mut b = sim(3);
    for p in [0usize, 1, 2] {
        a.step(ProcessId::new(p), Delivery::None).unwrap();
    }
    for p in [2usize, 0, 1] {
        b.step(ProcessId::new(p), Delivery::None).unwrap();
    }
    assert_eq!(a.config_fingerprint(), b.config_fingerprint());
    // …and a genuinely different configuration differs.
    a.step(ProcessId::new(0), Delivery::All).unwrap();
    assert_ne!(a.config_fingerprint(), b.config_fingerprint());
}

#[test]
fn dedup_counts_are_pinned() {
    // The exact dedup structure of a fixed bounded exploration. These
    // counts changed with neither the BTreeSet-era representation nor the
    // bitset one — they pin the explorer's state graph, so an accidental
    // fingerprint regression (weaker dedup ⇒ more states) fails loudly.
    let config = ExploreConfig {
        max_depth: 10,
        max_states: 1_000_000,
        branching: Branching::NoneOrAll,
    };
    let report = explore(&sim(2), &config, |_| Ok(()));
    assert!(!report.truncated);
    assert!(report.violation.is_none());
    assert_eq!(
        (report.states_expanded, report.terminals),
        (7, 1),
        "n=2 NoneOrAll dedup structure"
    );

    let report3 = explore(&sim(3), &config, |_| Ok(()));
    assert!(!report3.truncated);
    assert_eq!(
        (report3.states_expanded, report3.terminals),
        (54, 1),
        "n=3 NoneOrAll dedup structure"
    );
}

#[test]
fn dedup_is_depth_monotone() {
    // Deeper bounds can only reach more states; dedup never loses states.
    let shallow = explore(
        &sim(3),
        &ExploreConfig {
            max_depth: 6,
            max_states: 1_000_000,
            branching: Branching::NoneOrAll,
        },
        |_| Ok(()),
    );
    let deep = explore(
        &sim(3),
        &ExploreConfig {
            max_depth: 8,
            max_states: 1_000_000,
            branching: Branching::NoneOrAll,
        },
        |_| Ok(()),
    );
    assert!(deep.states_expanded >= shallow.states_expanded);
}

#[test]
fn per_source_branching_agrees_with_none_or_all_on_safety() {
    // Both branching menus must verify the same (true) property: the
    // explorer's verdicts are representation-independent.
    let config_na = ExploreConfig {
        max_depth: 8,
        max_states: 500_000,
        branching: Branching::NoneOrAll,
    };
    let config_ps = ExploreConfig {
        max_depth: 8,
        max_states: 500_000,
        branching: Branching::PerSource,
    };
    let check = |s: &Simulation<MinBarrier, kset_sim::NoOracle>| {
        let d: std::collections::BTreeSet<u64> = s.decisions().iter().flatten().copied().collect();
        if d.len() > 1 {
            Err(format!("{} distinct decisions", d.len()))
        } else {
            Ok(())
        }
    };
    assert!(explore(&sim(3), &config_na, check).violation.is_none());
    assert!(explore(&sim(3), &config_ps, check).violation.is_none());
}
