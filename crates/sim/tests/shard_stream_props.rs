//! Property tests for the shard/stream/merge layer: for arbitrary grids
//! and any shard count, the shards are disjoint, their union is the full
//! grid, cell indices and seeds match the unsharded emission exactly, and
//! merging per-shard streaming result files reproduces the sequential
//! sweep byte for byte.
//!
//! This is the contract the shard-matrix CI gate leans on: sharding is a
//! pure *partition* of the emitted index space — it renumbers nothing,
//! reseeds nothing, and loses nothing.

use proptest::prelude::*;

use kset_sim::sweep::{
    cell_seed, merge, scale_grid, sweep_seq, sweep_streaming, sweep_streaming_ordered, CellRecord,
    GridCell, ShardFile, ShardSpec,
};

/// Builds a duplicate-free axis from a raw draw (values are offsets into a
/// strictly increasing sequence, so any draw yields a valid axis).
fn axis(raw: &[usize], lo: usize) -> Vec<usize> {
    let mut v = lo;
    raw.iter()
        .map(|&step| {
            v += 1 + step % 5;
            v
        })
        .collect()
}

/// The shard partition of `cells`, as (spec, slice) pairs.
fn partition(cells: &[GridCell], count: usize) -> Vec<(ShardSpec, &[GridCell])> {
    (0..count)
        .map(|i| {
            let spec = ShardSpec::new(i, count).expect("i < count");
            (spec, spec.slice(cells))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shards are disjoint, contiguous, and their union — in order — is
    /// the unsharded emission: same cells, same indices, same seeds.
    #[test]
    fn shards_partition_the_unsharded_emission(
        ns_raw in proptest::collection::vec(0usize..64, 1..5),
        fs_raw in proptest::collection::vec(0usize..8, 1..4),
        ks_raw in proptest::collection::vec(0usize..8, 1..4),
        grid_seed in 0u64..1_000_000,
        shard_count in 1usize..9,
    ) {
        let ns = axis(&ns_raw, 3);
        let fs = axis(&fs_raw, 0);
        let ks = axis(&ks_raw, 0);
        let cells = scale_grid(&ns, &fs, &ks, grid_seed).expect("axes are duplicate-free");
        let mut rebuilt: Vec<GridCell> = Vec::new();
        for (spec, slice) in partition(&cells, shard_count) {
            let range = spec.range(cells.len());
            prop_assert_eq!(slice.len(), range.len());
            prop_assert_eq!(range.start, rebuilt.len(), "contiguous, in order");
            for (offset, cell) in slice.iter().enumerate() {
                // Global indices and seeds are shard-invariant.
                prop_assert_eq!(cell.index, range.start + offset);
                prop_assert_eq!(cell.seed, cell_seed(grid_seed, cell.index));
            }
            rebuilt.extend_from_slice(slice);
        }
        prop_assert_eq!(rebuilt, cells);
    }

    /// Merging the per-shard `sweep_streaming` outputs equals `sweep_seq`
    /// of the full grid — as records, and byte-for-byte as files.
    #[test]
    fn merged_streaming_shards_equal_sequential_sweep(
        ns_raw in proptest::collection::vec(0usize..32, 1..4),
        fs_raw in proptest::collection::vec(0usize..6, 1..3),
        grid_seed in 0u64..1_000_000,
        shard_count in 1usize..7,
        window in 1usize..9,
    ) {
        let ns = axis(&ns_raw, 3);
        let fs = axis(&fs_raw, 0);
        let cells = scale_grid(&ns, &fs, &[1, 2], grid_seed).expect("axes are duplicate-free");
        // A deterministic, order-sensitive digest of each cell.
        let digest = |cell: &GridCell| {
            cell.seed
                .rotate_left((cell.n % 61) as u32)
                .wrapping_mul(2 * (cell.f as u64) + 1)
                .wrapping_add(cell.k as u64)
        };
        let total = cells.len();
        let sequential = ShardFile {
            header: header(grid_seed, total, ShardSpec::FULL),
            records: sweep_seq(&cells, |_, c| CellRecord::new(c, digest(c))),
        };
        let mut shard_files = Vec::new();
        for (spec, slice) in partition(&cells, shard_count) {
            // Stream each shard through a bounded window, in cell order.
            let mut records = Vec::with_capacity(slice.len());
            sweep_streaming_ordered(slice, window, |_, c| CellRecord::new(c, digest(c)),
                |_, r| records.push(r)).unwrap();
            shard_files.push(ShardFile { header: header(grid_seed, total, spec), records });
        }
        // Every shard file round-trips through the text format.
        for file in &shard_files {
            let reparsed = ShardFile::parse(&file.render());
            prop_assert_eq!(reparsed.as_ref(), Ok(file));
        }
        let merged = merge(&shard_files).expect("a full partition merges");
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(merged.render(), sequential.render(), "byte-identical files");
    }

    /// The completion-order streaming runner delivers every cell exactly
    /// once with the result `sweep_seq` computes, whatever the window.
    #[test]
    fn unordered_streaming_covers_the_grid(
        len in 0usize..200,
        window in 1usize..12,
        salt in 0u64..1_000_000,
    ) {
        let cells: Vec<u64> = (0..len as u64).map(|c| c ^ salt).collect();
        let f = |i: usize, c: &u64| c.wrapping_mul(31).wrapping_add(i as u64);
        let expect = sweep_seq(&cells, f);
        let mut seen: Vec<Option<u64>> = vec![None; cells.len()];
        sweep_streaming(&cells, window, f, |i, r| {
            assert!(seen[i].is_none(), "cell {i} delivered twice");
            seen[i] = Some(r);
        }).unwrap();
        let got: Vec<u64> = seen.into_iter().map(Option::unwrap).collect();
        prop_assert_eq!(got, expect);
    }
}

fn header(grid_seed: u64, total: usize, shard: ShardSpec) -> kset_sim::sweep::SweepHeader {
    kset_sim::sweep::SweepHeader::new("props", grid_seed, "synthetic", total, shard)
}
