//! Property tests for shard-file format evolution: v1 files keep parsing
//! under the v2 parser with identical semantics, and any truncation of a
//! v2 file resumes — recomputing only the owed cells — to bytes identical
//! to the uninterrupted sweep, through the merge gate included.

use proptest::prelude::*;

use kset_sim::observe::EventCounts;
use kset_sim::sweep::{
    cell_seed, merge, CellRecord, FormatVersion, Observation, PartialShardFile, ShardFile,
    ShardSpec, SweepHeader,
};

/// The deterministic per-cell "sweep worker" of these tests: digest and
/// observation are pure functions of `(grid_seed, index)`, like every real
/// catalog worker.
fn record(grid_seed: u64, index: usize) -> CellRecord {
    let seed = cell_seed(grid_seed, index);
    let base = CellRecord {
        index,
        n: 4 + index % 7,
        f: index % 3,
        k: 1 + index % 2,
        seed,
        digest: seed.rotate_left((index % 61) as u32),
        obs: None,
    };
    match seed % 4 {
        0 => base,
        1 => base.with_observation(Observation::distinct((0..seed % 5).map(|v| v * 3))),
        2 => base.with_observation(Observation::Decisions(
            (0..3)
                .map(|i| !(seed >> i).is_multiple_of(3))
                .map(|d| d.then_some(seed % 9))
                .collect(),
        )),
        _ => base.with_observation(Observation::Counts(EventCounts {
            sends: seed % 100,
            dropped: seed % 7,
            delivers: seed % 90,
            fd_samples: seed % 11,
            steps: seed % 50,
            rounds: seed % 6,
            crashes: seed % 3,
            decides: seed % 5,
            halts: 1,
        })),
    }
}

fn shard_file(grid_seed: u64, total: usize, spec: ShardSpec, version: FormatVersion) -> ShardFile {
    let header =
        SweepHeader::new("props", grid_seed, "synthetic", total, spec).with_version(version);
    let records = header
        .range()
        .map(|index| {
            let mut r = record(grid_seed, index);
            if version == FormatVersion::V1 {
                r.obs = None; // v1 has no observation grammar
            }
            r
        })
        .collect();
    ShardFile { header, records }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every valid v1 shard file parses under the (shared) v2-era parser
    /// with identical semantics: same records, the version preserved, the
    /// re-rendering byte-identical.
    #[test]
    fn valid_v1_files_parse_with_identical_semantics(
        grid_seed in 0u64..1_000_000,
        total in 0usize..60,
        shard_count in 1usize..6,
        shard_index in 0usize..6,
    ) {
        let spec = ShardSpec::new(shard_index % shard_count, shard_count).unwrap();
        let v1 = shard_file(grid_seed, total, spec, FormatVersion::V1);
        let text = v1.render();
        prop_assert!(text.starts_with("kset-sweep v1\n"));

        let parsed = ShardFile::parse(&text).expect("valid v1 files parse");
        prop_assert_eq!(&parsed, &v1, "identical records and header");
        prop_assert_eq!(parsed.render(), text, "re-render is byte-identical");

        // The same bytes with only the magic bumped parse as v2 with the
        // same record semantics (the cell grammar is shared).
        let bumped = text.replacen("kset-sweep v1", "kset-sweep v2", 1);
        let as_v2 = ShardFile::parse(&bumped).expect("magic bump stays parseable");
        prop_assert_eq!(as_v2.header.version, FormatVersion::V2);
        prop_assert_eq!(&as_v2.records, &v1.records);

        // And the partial parser accepts complete v1 files as the
        // degenerate partial.
        let partial = PartialShardFile::parse(&text).expect("complete v1 accepted");
        prop_assert!(partial.is_complete());
        prop_assert_eq!(partial.records, v1.records);
    }

    /// Cut a v2 shard file at ANY byte past its header: the partial
    /// parses, owes exactly the un-recorded tail, and recomputing only
    /// that remainder rebuilds the uninterrupted bytes — which then merge
    /// (with the untouched sibling shards) to the sequential file.
    #[test]
    fn truncated_v2_resumes_to_uninterrupted_bytes(
        grid_seed in 0u64..1_000_000,
        total in 1usize..40,
        shard_count in 1usize..5,
        cut_permille in 0usize..1001,
    ) {
        let victim_index = (grid_seed as usize) % shard_count;
        let spec = ShardSpec::new(victim_index, shard_count).unwrap();
        let full = shard_file(grid_seed, total, spec, FormatVersion::V2);
        let reference = full.render();

        // Cut anywhere strictly past the 3-line header.
        let header_len = full.header.render().len();
        let cut = header_len + (reference.len() - header_len) * cut_permille / 1000;
        let cut = cut.min(reference.len());
        let partial = PartialShardFile::parse(&reference[..cut])
            .unwrap_or_else(|e| panic!("cut at byte {cut}/{}: {e}", reference.len()));

        // The prefix is honest: records are exactly the leading ones, and
        // owed names exactly the rest.
        let range = full.header.range();
        prop_assert_eq!(&partial.records[..], &full.records[..partial.records.len()]);
        prop_assert_eq!(
            partial.owed(),
            range.start + partial.records.len()..range.end
        );

        // Resume: recompute ONLY the owed cells with the same pure worker.
        let mut rebuilt_records = partial.records.clone();
        rebuilt_records.extend(partial.owed().map(|index| record(grid_seed, index)));
        let rebuilt = ShardFile { header: partial.header, records: rebuilt_records };
        prop_assert_eq!(rebuilt.render(), reference.clone(), "resume == uninterrupted");

        // The merge gate cannot tell a resumed shard from a clean one.
        let shards: Vec<ShardFile> = (0..shard_count)
            .map(|i| {
                if i == victim_index {
                    rebuilt.clone()
                } else {
                    shard_file(grid_seed, total, ShardSpec::new(i, shard_count).unwrap(),
                        FormatVersion::V2)
                }
            })
            .collect();
        let sequential = shard_file(grid_seed, total, ShardSpec::FULL, FormatVersion::V2);
        let merged = merge(&shards).expect("full partition merges");
        prop_assert_eq!(merged.render(), sequential.render());
    }
}
