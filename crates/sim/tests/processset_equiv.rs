//! Property test: `WideSet<W>` is observationally equivalent to
//! `BTreeSet<ProcessId>` under insert / remove / union / intersect /
//! difference / subset / iteration — at every width the workspace ships.
//!
//! The whole workspace runs its process sets through the width-generic
//! `WideSet` bitset (the `ProcessSet` alias pins `W = 8`, capacity 512);
//! this test drives the bitset and the `BTreeSet` reference through
//! identical random operation sequences **for W ∈ {2, 4, 8}** and compares
//! every observation, so any semantic drift — in the single-limb fast
//! window, across limb boundaries, or at the wide tail — shows up here
//! rather than as a subtle simulation divergence.
//!
//! Element indices are drawn from `0..MAX_ID` where `MAX_ID` scales with
//! the width under test, so cross-limb carries and the top bit of the top
//! limb are exercised, not just the first word.

use std::collections::BTreeSet;

use proptest::prelude::*;

use kset_sim::{ProcessId, WideSet};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Checks every observation the workspace makes on sets.
fn assert_equiv<const W: usize>(bits: WideSet<W>, tree: &BTreeSet<ProcessId>) {
    assert_eq!(bits.len(), tree.len());
    assert_eq!(bits.is_empty(), tree.is_empty());
    assert_eq!(bits.first(), tree.iter().next().copied());
    // Iteration yields the same elements in the same (ascending) order.
    let from_bits: Vec<ProcessId> = bits.iter().collect();
    let from_tree: Vec<ProcessId> = tree.iter().copied().collect();
    assert_eq!(from_bits, from_tree);
    // Membership agrees across the whole capacity window.
    for i in 0..WideSet::<W>::CAPACITY {
        assert_eq!(
            bits.contains(pid(i)),
            tree.contains(&pid(i)),
            "membership of p{} at W={W}",
            i + 1
        );
    }
    // Display matches the {p1, p2} convention the workspace prints.
    let rendered: Vec<String> = tree.iter().map(|p| p.to_string()).collect();
    assert_eq!(bits.to_string(), format!("{{{}}}", rendered.join(", ")));
}

/// Spreads a draw over the width's id range so every limb gets traffic:
/// half the draws land in the first limb, the rest stride the full window.
fn spread<const W: usize>(raw: usize) -> usize {
    let cap = WideSet::<W>::CAPACITY;
    if raw.is_multiple_of(2) {
        (raw / 2) % 64
    } else {
        (raw.wrapping_mul(67)) % cap
    }
}

fn check_insert_remove<const W: usize>(ops: &[(usize, u8)]) {
    let mut bits: WideSet<W> = WideSet::new();
    let mut tree: BTreeSet<ProcessId> = BTreeSet::new();
    for &(raw, op) in ops {
        let p = pid(spread::<W>(raw));
        match op {
            0 => assert_eq!(bits.insert(p), tree.insert(p)),
            _ => assert_eq!(bits.remove(p), tree.remove(&p)),
        }
        assert_equiv(bits, &tree);
    }
}

fn check_algebra<const W: usize>(a_mask: u64, b_mask: u64) {
    // 32 candidate members strided across the width's full id range.
    let members = |mask: u64| {
        (0..32usize)
            .filter(move |i| mask & (1 << i) != 0)
            .map(|i| (i * WideSet::<W>::CAPACITY / 32 + i % 7) % WideSet::<W>::CAPACITY)
    };
    let bits_a: WideSet<W> = members(a_mask).map(pid).collect();
    let bits_b: WideSet<W> = members(b_mask).map(pid).collect();
    let tree_a: BTreeSet<ProcessId> = members(a_mask).map(pid).collect();
    let tree_b: BTreeSet<ProcessId> = members(b_mask).map(pid).collect();

    assert_equiv(
        bits_a.union(bits_b),
        &tree_a.union(&tree_b).copied().collect(),
    );
    assert_equiv(
        bits_a.intersection(bits_b),
        &tree_a.intersection(&tree_b).copied().collect(),
    );
    assert_equiv(
        bits_a.difference(bits_b),
        &tree_a.difference(&tree_b).copied().collect(),
    );
    assert_eq!(bits_a.is_subset(bits_b), tree_a.is_subset(&tree_b));
    assert_eq!(bits_a.is_disjoint(bits_b), tree_a.is_disjoint(&tree_b));
    // Operator sugar matches the named methods.
    assert_eq!(bits_a | bits_b, bits_a.union(bits_b));
    assert_eq!(bits_a & bits_b, bits_a.intersection(bits_b));
    assert_eq!(bits_a - bits_b, bits_a.difference(bits_b));
    // Ord agrees with the big-integer reading of the bit pattern: compare
    // via the reversed member lists (most significant id first).
    let desc = |t: &BTreeSet<ProcessId>| {
        let mut v: Vec<ProcessId> = t.iter().copied().collect();
        v.reverse();
        v
    };
    assert_eq!(
        bits_a.cmp(&bits_b),
        desc(&tree_a).cmp(&desc(&tree_b)),
        "Ord is the numeric order of the bit pattern"
    );
}

fn check_collect_extend<const W: usize>(items: &[usize]) {
    let spreaded: Vec<usize> = items.iter().map(|&i| spread::<W>(i)).collect();
    let bits: WideSet<W> = spreaded.iter().copied().map(pid).collect();
    let tree: BTreeSet<ProcessId> = spreaded.iter().copied().map(pid).collect();
    assert_equiv(bits, &tree);

    let mut bits2: WideSet<W> = WideSet::new();
    bits2.extend(spreaded.iter().copied().map(pid));
    assert_eq!(bits, bits2);
}

fn check_complement<const W: usize>(mask: u64, n_frac: usize) {
    // n somewhere in the upper half of the window so complements cross limbs.
    let cap = WideSet::<W>::CAPACITY;
    let n = cap / 2 + n_frac % (cap / 2 + 1);
    let members =
        |mask: u64| (0..32usize).filter_map(move |i| (mask & (1 << i) != 0).then_some(i * n / 33));
    let bits: WideSet<W> = members(mask).map(pid).collect();
    let tree: BTreeSet<ProcessId> = members(mask).map(pid).collect();
    let full: BTreeSet<ProcessId> = (0..n).map(pid).collect();
    assert_equiv(
        bits.complement(n),
        &full.difference(&tree).copied().collect(),
    );
}

fn check_subsets<const W: usize>(mask: u64) {
    // ≤ 10 members keeps 2^len − 1 small; spread them across limbs.
    let members: Vec<usize> = (0..10usize)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| spread::<W>(i * 13 + 1))
        .collect();
    let bits: WideSet<W> = members.iter().copied().map(pid).collect();
    let subs: Vec<WideSet<W>> = bits.subsets().collect();
    assert_eq!(subs.len(), (1usize << bits.len()).saturating_sub(1));
    if let Some(first) = subs.first() {
        assert_eq!(*first, bits, "enumeration starts with the full set");
    }
    let distinct: BTreeSet<Vec<ProcessId>> = subs.iter().map(|s| s.iter().collect()).collect();
    assert_eq!(distinct.len(), subs.len(), "subsets are pairwise distinct");
    for sub in &subs {
        assert!(!sub.is_empty());
        assert!(sub.is_subset(bits));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Insert/remove sequences leave both structures in identical states,
    /// at W = 2 (the u128-window fast path), W = 4, and W = 8 (the
    /// ProcessSet width).
    #[test]
    fn insert_remove_equivalence(ops in proptest::collection::vec((0usize..1024, 0u8..2), 0..60)) {
        check_insert_remove::<2>(&ops);
        check_insert_remove::<4>(&ops);
        check_insert_remove::<8>(&ops);
    }

    /// The set algebra (∪, ∩, \), the relational queries (⊆, disjoint) and
    /// `Ord` agree with the BTreeSet reference on arbitrary operand pairs
    /// at every width.
    #[test]
    fn algebra_equivalence(a_mask in 0u64..(1 << 32), b_mask in 0u64..(1 << 32)) {
        check_algebra::<2>(a_mask, b_mask);
        check_algebra::<4>(a_mask, b_mask);
        check_algebra::<8>(a_mask, b_mask);
    }

    /// FromIterator/Extend ignore duplicates exactly like BTreeSet, and
    /// equality is structural, at every width.
    #[test]
    fn collect_and_extend_equivalence(items in proptest::collection::vec(0usize..1024, 0..40)) {
        check_collect_extend::<2>(&items);
        check_collect_extend::<4>(&items);
        check_collect_extend::<8>(&items);
    }

    /// Complement within `n` equals the BTreeSet difference from the full
    /// system, with `n` crossing limb boundaries.
    #[test]
    fn complement_equivalence(mask in 0u64..(1 << 32), n_frac in 0usize..512) {
        check_complement::<2>(mask, n_frac);
        check_complement::<4>(mask, n_frac);
        check_complement::<8>(mask, n_frac);
    }

    /// Subset enumeration yields exactly the 2^len − 1 distinct non-empty
    /// subsets, full set first, at every width.
    #[test]
    fn subset_enumeration_equivalence(mask in 0u64..(1 << 10)) {
        check_subsets::<2>(mask);
        check_subsets::<4>(mask);
        check_subsets::<8>(mask);
    }
}
