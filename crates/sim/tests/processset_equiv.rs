//! Property test: `ProcessSet` is observationally equivalent to
//! `BTreeSet<ProcessId>` under insert / remove / union / intersect /
//! difference / subset / iteration.
//!
//! The whole workspace swapped its process-set representation from
//! `BTreeSet<ProcessId>` to the `u128` bitset; this test drives both
//! structures through identical random operation sequences and compares
//! every observation, so any semantic drift in the bitset shows up here
//! rather than as a subtle simulation divergence.

use std::collections::BTreeSet;

use proptest::prelude::*;

use kset_sim::{ProcessId, ProcessSet};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Checks every observation the workspace makes on sets.
fn assert_equiv(bits: ProcessSet, tree: &BTreeSet<ProcessId>) {
    assert_eq!(bits.len(), tree.len());
    assert_eq!(bits.is_empty(), tree.is_empty());
    assert_eq!(bits.first(), tree.iter().next().copied());
    // Iteration yields the same elements in the same (ascending) order.
    let from_bits: Vec<ProcessId> = bits.iter().collect();
    let from_tree: Vec<ProcessId> = tree.iter().copied().collect();
    assert_eq!(from_bits, from_tree);
    // Membership agrees across the whole capacity window we use.
    for i in 0..16 {
        assert_eq!(
            bits.contains(pid(i)),
            tree.contains(&pid(i)),
            "membership of p{}",
            i + 1
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Insert/remove sequences leave both structures in identical states.
    #[test]
    fn insert_remove_equivalence(ops in proptest::collection::vec((0usize..16, 0u8..2), 0..60)) {
        let mut bits = ProcessSet::new();
        let mut tree: BTreeSet<ProcessId> = BTreeSet::new();
        for (i, op) in ops {
            let p = pid(i);
            match op {
                0 => prop_assert_eq!(bits.insert(p), tree.insert(p)),
                _ => prop_assert_eq!(bits.remove(p), tree.remove(&p)),
            }
            assert_equiv(bits, &tree);
        }
    }

    /// The set algebra (∪, ∩, \) and the relational queries (⊆, disjoint)
    /// agree with the BTreeSet reference on arbitrary operand pairs.
    #[test]
    fn algebra_equivalence(a_mask in 0u32..(1 << 16), b_mask in 0u32..(1 << 16)) {
        let members = |mask: u32| (0..16).filter(move |i| mask & (1 << i) != 0);
        let bits_a: ProcessSet = members(a_mask).map(pid).collect();
        let bits_b: ProcessSet = members(b_mask).map(pid).collect();
        let tree_a: BTreeSet<ProcessId> = members(a_mask).map(pid).collect();
        let tree_b: BTreeSet<ProcessId> = members(b_mask).map(pid).collect();

        assert_equiv(bits_a.union(bits_b), &tree_a.union(&tree_b).copied().collect());
        assert_equiv(
            bits_a.intersection(bits_b),
            &tree_a.intersection(&tree_b).copied().collect(),
        );
        assert_equiv(
            bits_a.difference(bits_b),
            &tree_a.difference(&tree_b).copied().collect(),
        );
        prop_assert_eq!(bits_a.is_subset(bits_b), tree_a.is_subset(&tree_b));
        prop_assert_eq!(bits_a.is_disjoint(bits_b), tree_a.is_disjoint(&tree_b));
        // Operator sugar matches the named methods.
        prop_assert_eq!(bits_a | bits_b, bits_a.union(bits_b));
        prop_assert_eq!(bits_a & bits_b, bits_a.intersection(bits_b));
        prop_assert_eq!(bits_a - bits_b, bits_a.difference(bits_b));
    }

    /// FromIterator/Extend ignore duplicates exactly like BTreeSet, and
    /// equality is structural.
    #[test]
    fn collect_and_extend_equivalence(items in proptest::collection::vec(0usize..16, 0..40)) {
        let bits: ProcessSet = items.iter().copied().map(pid).collect();
        let tree: BTreeSet<ProcessId> = items.iter().copied().map(pid).collect();
        assert_equiv(bits, &tree);

        let mut bits2 = ProcessSet::new();
        bits2.extend(items.iter().copied().map(pid));
        prop_assert_eq!(bits, bits2);

        // Display matches the {p1, p2} convention the workspace prints.
        let rendered: Vec<String> = tree.iter().map(|p| p.to_string()).collect();
        prop_assert_eq!(bits.to_string(), format!("{{{}}}", rendered.join(", ")));
    }

    /// Complement within `n` equals the BTreeSet difference from the full
    /// system.
    #[test]
    fn complement_equivalence(mask in 0u32..(1 << 12), n in 12usize..=16) {
        let bits: ProcessSet = (0..12).filter(|i| mask & (1 << i) != 0).map(pid).collect();
        let tree: BTreeSet<ProcessId> = (0..12).filter(|i| mask & (1 << i) != 0).map(pid).collect();
        let full: BTreeSet<ProcessId> = (0..n).map(pid).collect();
        assert_equiv(bits.complement(n), &full.difference(&tree).copied().collect());
    }
}
