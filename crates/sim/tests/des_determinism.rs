//! Determinism of the discrete-event substrate, observed end to end: two
//! timed runs from identical seeds must emit **byte-identical** Observer
//! event streams — same events, same order, same payload fingerprints —
//! while a different latency seed perturbs the stream. (The heap-level
//! half of the claim — same-timestamp events pop in insertion order —
//! lives next to the heap in `des::heap`.)

use std::collections::BTreeSet;

use kset_sim::des::{DesEngine, Latency, VirtualTime};
use kset_sim::observe::{
    CrashEvent, DecideEvent, DeliverEvent, HaltEvent, Observer, SendEvent, StepEvent,
};
use kset_sim::{CrashPlan, Effects, Engine, Envelope, Process, ProcessId, ProcessInfo, Simulation};

/// Broadcasts its input once, then decides the minimum it has seen after
/// hearing from everyone it ever will.
#[derive(Debug, Clone, Hash)]
struct MinFlood {
    n: usize,
    seen: BTreeSet<u32>,
    sent: bool,
}

impl Process for MinFlood {
    type Msg = u32;
    type Input = u32;
    type Output = u32;
    type Fd = ();

    fn init(info: ProcessInfo, input: u32) -> Self {
        MinFlood {
            n: info.n,
            seen: BTreeSet::from([input]),
            sent: false,
        }
    }

    fn step(
        &mut self,
        delivered: &[Envelope<u32>],
        _fd: Option<&()>,
        effects: &mut Effects<u32, u32>,
    ) {
        if !self.sent {
            self.sent = true;
            let mine = *self.seen.iter().next().unwrap();
            effects.broadcast(mine);
        }
        self.seen.extend(delivered.iter().map(|e| e.payload));
        if self.seen.len() >= self.n {
            effects.decide(*self.seen.iter().next().unwrap());
        }
    }
}

/// Renders every observed event into one growing text transcript, so two
/// runs compare as plain bytes.
#[derive(Debug, Default)]
struct Transcript(String);

impl Observer<u32> for Transcript {
    fn on_send(&mut self, e: &SendEvent) {
        self.0.push_str(&format!(
            "send t={} {}->{} id={:?} fp={:?} dropped={}\n",
            e.time, e.src, e.dst, e.id, e.payload_fp, e.dropped
        ));
    }
    fn on_deliver(&mut self, e: &DeliverEvent) {
        self.0.push_str(&format!(
            "deliver t={} {}->{} id={:?} fp={:?}\n",
            e.time, e.src, e.dst, e.id, e.payload_fp
        ));
    }
    fn on_step(&mut self, e: &StepEvent) {
        self.0.push_str(&format!(
            "step t={} {} local={} state={:#x} in={} out={}\n",
            e.time, e.pid, e.local_step, e.state_fp, e.delivered, e.sent
        ));
    }
    fn on_crash(&mut self, e: &CrashEvent) {
        self.0.push_str(&format!(
            "crash t={} {} after_step={}\n",
            e.time, e.pid, e.after_step
        ));
    }
    fn on_decide(&mut self, e: &DecideEvent<u32>) {
        self.0
            .push_str(&format!("decide t={} {} v={}\n", e.time, e.pid, e.value));
    }
    fn on_halt(&mut self, e: &HaltEvent) {
        self.0.push_str(&format!(
            "halt steps={} stop={:?} units={}\n",
            e.status.steps, e.status.stop, e.units
        ));
    }
}

fn inputs(n: usize) -> Vec<u32> {
    (0..n as u32).map(|i| i * 7 + 2).collect()
}

/// One observed timed run — jittered latency, a GST window, a mid-run
/// strike and a detector cadence all in play — rendered to text.
fn transcript_of(seed: u64) -> String {
    let n = 6;
    let sim: Simulation<MinFlood, _> = Simulation::new(inputs(n), CrashPlan::none());
    let mut engine = DesEngine::timed(sim, Latency::uniform(2, 9), 13, seed)
        .with_crash_at(ProcessId::new(4), VirtualTime::new(20))
        .with_detector_cadence(5);
    let mut obs = Transcript::default();
    engine.drive_observed(10_000, &mut obs);
    assert!(engine.done(), "all non-faulty processes decide");
    obs.0
}

#[test]
fn identical_seeds_yield_byte_identical_event_streams() {
    let first = transcript_of(0xDE5_0001);
    let second = transcript_of(0xDE5_0001);
    assert!(!first.is_empty());
    assert!(first.contains("crash "), "the scheduled strike is observed");
    assert!(first.contains("decide "), "decisions are observed");
    assert_eq!(first, second, "same seed, same bytes");
}

#[test]
fn different_latency_seeds_perturb_the_stream() {
    // Both runs are individually deterministic, so this comparison is
    // stable — and with 2..9 jitter on every link the draws differ.
    let a = transcript_of(0xDE5_0001);
    let b = transcript_of(0xDE5_0002);
    assert_ne!(a, b, "the latency seed reaches the event stream");
}
