//! End-to-end fleet conformance over real loopback sockets: under worker
//! churn (crash injection, hangs, torn lines, protocol garbage), the
//! coordinator's incrementally-streamed output must be byte-identical to
//! the sequential reference rendering of the same grid — every time.
//!
//! These tests drive a *synthetic* grid (arbitrary digests derived from
//! the cell seed) so they exercise the fleet machinery without paying for
//! simulation; the catalog-backed equivalents live in
//! `crates/bench/tests/fleet_gate.rs`.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use kset_sim::fleet::{
    run_worker, Coordinator, CoordinatorConfig, FleetCounter, FleetCounts, FleetError, GridId,
    GridRejected, LeaseParams, WorkerConfig,
};
use kset_sim::sweep::record::{Observation, ShardFile};
use kset_sim::sweep::CellRecord;
use kset_sim::sweep::{cell_seed, PartialShardFile, ShardSpec};

fn grid_id(grid_seed: u64, total: usize) -> GridId {
    GridId {
        grid: "synthetic".to_string(),
        grid_seed,
        axes: "conformance-unit".to_string(),
        total,
    }
}

/// The synthetic cell function: fully determined by the grid, so every
/// worker (and the sequential reference) computes identical records.
fn synth_record(id: &GridId, index: usize) -> CellRecord {
    let seed = cell_seed(id.grid_seed, index);
    CellRecord {
        index,
        n: 4 + index % 5,
        f: 1 + index % 2,
        k: 1,
        seed,
        digest: seed.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15,
        obs: if index.is_multiple_of(3) {
            Some(Observation::Distinct(vec![seed % 3, 7 + seed % 2]))
        } else {
            None
        },
    }
}

fn synth_compute(id: &GridId, index: usize) -> Result<CellRecord, GridRejected> {
    if index >= id.total {
        return Err(GridRejected {
            reason: format!("cell {index} outside {} cells", id.total),
        });
    }
    Ok(synth_record(id, index))
}

fn reference_bytes(id: &GridId) -> String {
    ShardFile {
        header: id.full_header(),
        records: (0..id.total).map(|i| synth_record(id, i)).collect(),
    }
    .render()
}

fn test_config() -> CoordinatorConfig {
    CoordinatorConfig {
        lease: LeaseParams {
            cells: 3,
            timeout: Duration::from_millis(60),
        },
        poll: Duration::from_millis(2),
    }
}

/// Binds a coordinator, runs it in a scoped thread while `drive` does
/// whatever it wants against the address, and returns the streamed bytes
/// plus the final counts.
fn run_fleet(
    id: &GridId,
    resume: Vec<CellRecord>,
    drive: impl FnOnce(SocketAddr),
) -> (String, FleetCounts) {
    let coordinator =
        Coordinator::bind("127.0.0.1:0", id.clone(), resume, test_config()).expect("bind");
    let addr = coordinator.local_addr().expect("local_addr");
    std::thread::scope(|scope| {
        let run = scope.spawn(move || {
            let mut counter = FleetCounter::default();
            let mut out = String::new();
            let (file, counts) = coordinator
                .run(&mut counter, |chunk| out.push_str(chunk))
                .expect("fleet run");
            assert_eq!(
                counter.counts, counts,
                "observer events and state counts must agree"
            );
            assert_eq!(out, file.render(), "streamed bytes == certified render");
            (out, counts)
        });
        drive(addr);
        run.join().expect("coordinator thread")
    })
}

#[test]
fn chaos_20_seeded_runs_with_killed_workers_merge_to_reference_bytes() {
    for run_seed in 0..20u64 {
        let id = grid_id(run_seed, 14 + (run_seed as usize % 7));
        let reference = reference_bytes(&id);
        let total = id.total;
        // Three workers; two die at seeded cells, one stays healthy so the
        // sweep always finishes. Derive the crash points from `cell_seed`
        // so the schedule is reproducible but different every run, and
        // keep them inside the first lease (< 3 cells) so the death is
        // guaranteed to happen while a lease is held. The saboteurs run to
        // their deaths *before* the healthy worker starts: two of them can
        // cover at most 4 of the >=14 cells, so the grid is never complete
        // when a saboteur connects and the injection always fires.
        let fails = [
            cell_seed(run_seed, 1_000) as usize % 3,
            cell_seed(run_seed, 2_000) as usize % 3,
        ];
        let (out, counts) = run_fleet(&id, Vec::new(), |addr| {
            std::thread::scope(|scope| {
                for (w, fail_after) in fails.into_iter().enumerate() {
                    scope.spawn(move || {
                        let config = WorkerConfig {
                            name: format!("w-{w}"),
                            fail_after: Some(fail_after),
                        };
                        match run_worker(&addr.to_string(), &config, synth_compute) {
                            Ok(report) => assert!(report.injected_failure),
                            other => panic!("saboteur w-{w}: {other:?}"),
                        }
                    });
                }
            });
            let healthy = run_worker(&addr.to_string(), &WorkerConfig::new("healthy"), |g, i| {
                synth_compute(g, i)
            });
            match healthy {
                Ok(report) => assert!(!report.injected_failure),
                // A worker that outlives completion may see the coordinator
                // hang up instead of fin.
                Err(FleetError::Disconnected { .. }) | Err(FleetError::Io { .. }) => {}
                other => panic!("healthy worker: {other:?}"),
            }
        });
        assert_eq!(out, reference, "run_seed {run_seed}: byte drift");
        assert_eq!(counts.merged as usize, total, "run_seed {run_seed}");
        assert!(
            counts.lost + counts.expired >= 2,
            "two workers died; their leases must have been recovered: {counts:?}"
        );
    }
}

#[test]
fn hello_then_silent_hang_is_stolen_by_the_deadline() {
    let id = grid_id(77, 9);
    let reference = reference_bytes(&id);
    let (out, counts) = run_fleet(&id, Vec::new(), |addr| {
        // The hanger: says hello, takes (implicitly) a lease, never speaks
        // again. Its lease can only be recovered by deadline expiry.
        let mut hanger = TcpStream::connect(addr).expect("connect hanger");
        hanger
            .write_all(b"hello kset-fleet v1 worker hanger\n")
            .expect("hello");
        // Give the coordinator time to grant the hanger the first lease so
        // the test really exercises expiry, then start the healthy worker.
        std::thread::sleep(Duration::from_millis(20));
        let report = run_worker(
            &addr.to_string(),
            &WorkerConfig::new("healthy"),
            synth_compute,
        )
        .expect("healthy worker");
        assert!(report.cells > 0);
        drop(hanger);
    });
    assert_eq!(out, reference);
    assert!(
        counts.expired >= 1,
        "the hanger's lease must expire, not linger: {counts:?}"
    );
}

#[test]
fn clean_hangup_while_queued_for_a_grant_is_counted_lost() {
    // Regression: the grant-wait loop used to sleep blind between grant
    // attempts, so a worker that said hello, queued behind a fully-leased
    // grid, and hung up cleanly was never noticed — if the sweep finished
    // before a lease ever freed up, the summary under-reported `lost`.
    // The loop now listens on the socket while waiting, so the EOF lands.
    let id = grid_id(404, 3);
    let reference = reference_bytes(&id);
    // One lease covers the whole grid, and it never expires within the
    // test: the idler can only ever be told to wait.
    let config = CoordinatorConfig {
        lease: LeaseParams {
            cells: 3,
            timeout: Duration::from_millis(500),
        },
        poll: Duration::from_millis(2),
    };
    let coordinator =
        Coordinator::bind("127.0.0.1:0", id.clone(), Vec::new(), config).expect("bind");
    let addr = coordinator.local_addr().expect("local_addr");
    let (out, counts) = std::thread::scope(|scope| {
        let run = scope.spawn(move || {
            let mut counter = FleetCounter::default();
            let mut out = String::new();
            let (_, counts) = coordinator
                .run(&mut counter, |chunk| out.push_str(chunk))
                .expect("fleet run");
            (out, counts)
        });
        // The holder: sweeps every cell, slowly enough that the idler's
        // whole lifetime fits inside its lease.
        let holder = scope.spawn(move || {
            run_worker(&addr.to_string(), &WorkerConfig::new("holder"), |g, i| {
                std::thread::sleep(Duration::from_millis(15));
                synth_compute(g, i)
            })
            .expect("holder worker");
        });
        // Give the holder time to claim the (only) lease, then enqueue the
        // idler: hello, wait for a grant that cannot come, hang up cleanly.
        std::thread::sleep(Duration::from_millis(5));
        let mut idler = TcpStream::connect(addr).expect("connect idler");
        idler
            .write_all(b"hello kset-fleet v1 worker idler\n")
            .expect("hello");
        std::thread::sleep(Duration::from_millis(10));
        drop(idler);
        holder.join().expect("holder thread");
        run.join().expect("coordinator thread")
    });
    assert_eq!(out, reference, "the sweep itself is untouched");
    assert_eq!(counts.merged as usize, id.total);
    assert_eq!(
        counts.expired, 0,
        "the holder's lease never expires: {counts:?}"
    );
    assert!(
        counts.lost >= 1,
        "the idler's clean EOF while queued must be counted: {counts:?}"
    );
}

#[test]
fn torn_lines_and_garbage_are_cut_off_without_byte_drift() {
    let id = grid_id(5150, 10);
    let reference = reference_bytes(&id);
    let (out, counts) = run_fleet(&id, Vec::new(), |addr| {
        // Peer 1: garbage before hello.
        let mut garbage = TcpStream::connect(addr).expect("connect");
        garbage.write_all(b"begin transaction\n").expect("write");
        // Peer 2: valid hello, then a *torn* progress line (no newline)
        // and a hangup — the fragment must be dropped, never parsed.
        let mut torn = TcpStream::connect(addr).expect("connect");
        torn.write_all(b"hello kset-fleet v1 worker torn\n")
            .expect("hello");
        std::thread::sleep(Duration::from_millis(10));
        torn.write_all(b"progress lease 0 cell 0 n 4 f 1 k 1 seed 0x12")
            .expect("torn fragment");
        drop(torn);
        // Peer 3: valid hello, then a complete-but-malformed line.
        let mut mangled = TcpStream::connect(addr).expect("connect");
        mangled
            .write_all(b"hello kset-fleet v1 worker mangled\n")
            .expect("hello");
        std::thread::sleep(Duration::from_millis(10));
        mangled
            .write_all(b"progress lease 0 cell zero n 4 f 1 k 1 seed 0x12 digest 0x34\n")
            .expect("mangled line");
        drop(garbage);
        // The healthy worker sweeps whatever the vandals left owed.
        run_worker(&addr.to_string(), &WorkerConfig::new("healthy"), |g, i| {
            synth_compute(g, i)
        })
        .expect("healthy worker");
    });
    assert_eq!(out, reference);
    assert!(
        counts.faults >= 1,
        "the mangled line is a protocol fault: {counts:?}"
    );
}

#[test]
fn restart_from_partial_file_computes_only_owed_cells() {
    let id = grid_id(31, 12);
    let reference = reference_bytes(&id);

    // Simulate a coordinator killed mid-run: its on-disk artifact is a
    // valid partial prefix (here: header + first 5 records + a torn tail
    // that the parser must drop).
    let keep = 5;
    let mut artifact = id.full_header().render();
    for i in 0..keep {
        artifact.push_str(&synth_record(&id, i).render_line());
        artifact.push('\n');
    }
    artifact.push_str("cell 5 n 4 f 1 k 1 seed 0x9"); // torn mid-line
    let partial = PartialShardFile::parse(&artifact).expect("partial parse");
    assert_eq!(partial.header.shard, ShardSpec::FULL);
    assert_eq!(partial.owed(), keep..id.total);

    // Restart: seed the new coordinator with the recovered records and
    // count exactly how many cells the worker recomputes.
    let computed = AtomicUsize::new(0);
    let (out, counts) = run_fleet(&id, partial.records, |addr| {
        run_worker(&addr.to_string(), &WorkerConfig::new("resumer"), |g, i| {
            computed.fetch_add(1, Ordering::Relaxed);
            synth_compute(g, i)
        })
        .expect("resuming worker");
    });
    assert_eq!(out, reference, "resume must converge to the same bytes");
    assert_eq!(
        computed.load(Ordering::Relaxed),
        id.total - keep,
        "only the owed cells may be recomputed"
    );
    assert_eq!(counts.merged as usize, id.total - keep);
}

#[test]
fn fully_seeded_resume_completes_without_any_worker() {
    let id = grid_id(8, 6);
    let records: Vec<CellRecord> = (0..id.total).map(|i| synth_record(&id, i)).collect();
    let (out, counts) = run_fleet(&id, records, |_addr| {});
    assert_eq!(out, reference_bytes(&id));
    assert_eq!(counts.merged, 0, "nothing left to merge");
    assert_eq!(counts.leases, 0, "nothing left to lease");
}

#[test]
fn in_use_listen_port_is_a_typed_error() {
    let taken = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = taken.local_addr().expect("local_addr").to_string();
    let err = Coordinator::bind(&addr, grid_id(1, 3), Vec::new(), test_config())
        .expect_err("second bind must fail");
    assert!(
        matches!(&err, FleetError::Io { context, .. } if context.contains("bind")),
        "{err:?}"
    );
}

#[test]
fn unreachable_connect_is_a_typed_error() {
    // A port that was just released: connecting is refused, not hung.
    let released = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = released.local_addr().expect("local_addr").to_string();
    drop(released);
    let err =
        run_worker(&addr, &WorkerConfig::new("w"), synth_compute).expect_err("connect must fail");
    assert!(
        matches!(&err, FleetError::Io { context, .. } if context.contains("connect")),
        "{err:?}"
    );
}

#[test]
fn bad_worker_name_is_rejected_before_connecting() {
    let err = run_worker(
        "127.0.0.1:1",
        &WorkerConfig::new("two tokens"),
        synth_compute,
    )
    .expect_err("bad name");
    assert!(matches!(err, FleetError::BadWorkerName { .. }), "{err:?}");
}
