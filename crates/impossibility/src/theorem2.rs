//! Theorem 2, executably: the partially synchronous / asynchronous border.
//!
//! *There is no algorithm that solves k-set agreement with synchronous
//! processes, asynchronous communication, atomic broadcast, and
//! receive+send in one atomic step, for any `k ≤ (n−1)/(n−f)` — even if
//! `f − 1` of the `f` faulty processes can only crash initially.*
//!
//! The executable content:
//!
//! * the **border predicate** lives in [`crate::borders::theorem2_impossible`];
//! * the **layout** `Di = {p_{(i−1)ℓ+1}, …, p_{iℓ}}`, `ℓ = n − f`
//!   ([`PartitionSpec::theorem2`], with Lemma 3's arithmetic checked in
//!   `borders`);
//! * [`demo`] runs the Theorem 1 checker against a candidate algorithm in
//!   that layout and verifies the pasted run respects the model's process
//!   synchrony (every process keeps taking steps — the adversary uses only
//!   *communication* asynchrony, as the theorem demands);
//! * Lemma 4 (the algorithm is `{D1, …, D(k−1), D̄}`-independent) is what
//!   the solo runs of the checker witness constructively.

use kset_core::algorithms::naive::DecideOwn;
use kset_core::algorithms::two_stage::{two_stage_inputs, TwoStage};
use kset_core::task::{distinct_proposals, Val};
use kset_sim::admissible::{check, AdmissibilityRequirements};
use kset_sim::{Process, SynchronyBounds};

use crate::partition::PartitionSpec;
use crate::theorem1::{analyze_no_fd, Theorem1Analysis};

/// The evidence bundle of a Theorem 2 demo on one candidate algorithm.
#[derive(Debug, Clone)]
pub struct Theorem2Demo {
    /// Grid point.
    pub n: usize,
    /// Failure budget.
    pub f: usize,
    /// Agreement parameter.
    pub k: usize,
    /// The Theorem 1 analysis of the candidate.
    pub analysis: Theorem1Analysis<Val>,
    /// Whether the pasted run respects process synchrony Φ = n (the
    /// adversary used only communication asynchrony).
    pub process_synchrony_ok: bool,
}

impl Theorem2Demo {
    /// Theorem 2's verdict on the candidate: condition (C) holds in `⟨D̄⟩`
    /// (|D̄| ≥ 2 processes, one may crash ⇒ consensus unsolvable by
    /// Dolev–Dwork–Stockmeyer / FLP), so any established reduction or
    /// direct violation refutes the candidate.
    pub fn refuted(&self) -> bool {
        self.analysis.refutes(true)
    }
}

/// Runs the Theorem 2 demo for any candidate algorithm without failure
/// detectors.
pub fn demo<P>(
    make_inputs: impl Fn() -> Vec<P::Input>,
    n: usize,
    f: usize,
    k: usize,
    max_steps: u64,
) -> Option<Theorem2Demo>
where
    P: Process<Fd = (), Output = Val>,
    P::Input: Clone,
{
    let spec = PartitionSpec::theorem2(n, f, k)?;
    let analysis = analyze_no_fd::<P>(make_inputs, &spec, max_steps);
    let process_synchrony_ok = analysis
        .pasted
        .as_ref()
        .map(|p| {
            // Φ = n: in the pasted run no alive process is overtaken by
            // more than n steps of another — our round-robin interleave is
            // comfortably within any constant bound, demonstrating that
            // the adversary never exploited process asynchrony.
            let req = AdmissibilityRequirements::bounds_only(SynchronyBounds {
                phi: Some(n as u64),
                delta: None,
            });
            check(&p.report.trace, &req).is_admissible()
        })
        .unwrap_or(false);
    Some(Theorem2Demo {
        n,
        f,
        k,
        analysis,
        process_synchrony_ok,
    })
}

/// The demo against the canonical wait-free candidate [`DecideOwn`].
pub fn demo_decide_own(n: usize, f: usize, k: usize, max_steps: u64) -> Option<Theorem2Demo> {
    demo::<DecideOwn>(|| distinct_proposals(n), n, f, k, max_steps)
}

/// The demo against the paper's own two-stage algorithm with threshold
/// `L = n − f` — inside the impossible region even the "right" algorithm
/// must fall to the partitioning adversary.
pub fn demo_two_stage(n: usize, f: usize, k: usize, max_steps: u64) -> Option<Theorem2Demo> {
    let l = n - f;
    demo::<TwoStage>(
        || two_stage_inputs(l, &distinct_proposals(n)),
        n,
        f,
        k,
        max_steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::borders::theorem2_impossible;
    use crate::theorem1::Theorem1Outcome;

    #[test]
    fn decide_own_refuted_across_the_impossible_grid() {
        for n in 3..8 {
            for f in 1..n {
                for k in 1..n {
                    let impossible = theorem2_impossible(n, f, k);
                    let demo = demo_decide_own(n, f, k, 50_000);
                    assert_eq!(
                        demo.is_some(),
                        impossible,
                        "layout iff impossible: n={n} f={f} k={k}"
                    );
                    if let Some(d) = demo {
                        assert!(d.refuted(), "n={n} f={f} k={k}");
                        assert!(d.process_synchrony_ok, "n={n} f={f} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn two_stage_with_l_nf_is_refuted_in_the_impossible_region() {
        // n = 5, f = 3, k = 2: Theorem 2 says impossible. The two-stage
        // algorithm with L = n−f = 2 is exactly the Theorem 8 algorithm,
        // but with mid-run failure power the partitioning adversary defeats
        // it (it only guarantees ⌊n/L⌋ = 2 values for INITIAL crashes, and
        // here the adversary partitions without any crash at all).
        let d = demo_two_stage(5, 3, 2, 100_000).expect("layout exists");
        assert!(d.analysis.condition_a);
        assert!(d.analysis.condition_b_verified);
        assert!(d.analysis.condition_d_verified);
        assert!(d.refuted());
        assert!(d.process_synchrony_ok);
    }

    #[test]
    fn two_stage_direct_violation_when_blocks_cover_k() {
        // n = 7, f = 5, k = 3 (impossible: 3·2+1 ≤ 7): blocks of size
        // ℓ = 2 decide 2 values, D̄ = 3 processes with L = 2 decide a third
        // — and the pasted run shows ≥ 3... the checker classifies either
        // DirectViolation or ReductionEstablished; both refute.
        let d = demo_two_stage(7, 5, 3, 100_000).expect("layout exists");
        assert!(d.refuted());
        match d.analysis.outcome {
            Theorem1Outcome::DirectViolation { distinct, k } => assert!(distinct > k),
            Theorem1Outcome::ReductionEstablished => {}
            Theorem1Outcome::ConditionAFailed { .. } => panic!("must not pass"),
        }
    }

    #[test]
    fn solvable_region_has_no_layout() {
        // n = 7, f = 2, k = 2: 2·5+1 = 11 > 7 — Theorem 2 does not apply.
        assert!(demo_decide_own(7, 2, 2, 1_000).is_none());
    }
}
