//! Partition layouts: the sets `D1, …, D(k−1)` and `D̄` of Theorem 1 as
//! used by the concrete instantiations.
//!
//! * **Theorem 2 layout** — `Di = {p_{(i−1)ℓ+1}, …, p_{iℓ}}` with
//!   `ℓ = n − f`, and `D̄ = Π \ D` (Lemma 3 guarantees `|D̄| ≥ ℓ + 1`).
//! * **Theorem 10 layout** — `D̄ = {p1, …, pj}` with `j = n − k + 1 ≥ 3`,
//!   and `D1, …, D(k−1)` the singletons of the remaining processes.
//! * **Theorem 8 borderline layout** — `k + 1` equal groups of
//!   `n/(k+1) = n − f` processes (the classic partitioning argument at
//!   `kn = (k+1)f`).

use kset_sim::{ProcessId, ProcessSet};

use crate::borders::{theorem2_layout_ell, theorem8_borderline};

/// A partition specification for Theorem 1: the blocks `D1, …, D(k−1)` plus
/// the reduction set `D̄`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    n: usize,
    /// The decision blocks `D1, …, D(k−1)`.
    blocks: Vec<ProcessSet>,
    /// The consensus-reduction set `D̄`.
    dbar: ProcessSet,
}

impl PartitionSpec {
    /// Creates a specification from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts are empty, overlap, or leave processes
    /// unassigned (the paper allows `D ∪ D̄ ⊊ Π` in general, but the
    /// concrete layouts always cover Π, and covering keeps the partition
    /// failure detector of Definition 7 well-formed).
    pub fn new(n: usize, blocks: Vec<ProcessSet>, dbar: ProcessSet) -> Self {
        assert!(!dbar.is_empty(), "D̄ must be nonempty");
        let mut seen = ProcessSet::new();
        for b in blocks.iter().chain(std::iter::once(&dbar)) {
            assert!(!b.is_empty(), "blocks must be nonempty");
            for p in b {
                assert!(p.index() < n, "block member out of range");
                assert!(seen.insert(p), "blocks must be disjoint ({p} repeated)");
            }
        }
        assert_eq!(seen.len(), n, "blocks ∪ D̄ must cover Π");
        PartitionSpec { n, blocks, dbar }
    }

    /// The Theorem 2 layout, if the failure bound `k ≤ (n−1)/(n−f)` admits
    /// it.
    pub fn theorem2(n: usize, f: usize, k: usize) -> Option<Self> {
        let ell = theorem2_layout_ell(n, f, k)?;
        let mut blocks = Vec::with_capacity(k - 1);
        for i in 0..k - 1 {
            let block: ProcessSet = (i * ell..(i + 1) * ell).map(ProcessId::new).collect();
            blocks.push(block);
        }
        let dbar: ProcessSet = ((k - 1) * ell..n).map(ProcessId::new).collect();
        Some(PartitionSpec::new(n, blocks, dbar))
    }

    /// The Theorem 10 layout for `2 ≤ k ≤ n − 2`: `D̄ = {p1, …, pj}` with
    /// `j = n − k + 1`, singletons for the rest.
    pub fn theorem10(n: usize, k: usize) -> Option<Self> {
        if !(2..=n.saturating_sub(2)).contains(&k) {
            return None;
        }
        let j = n - k + 1; // j ≥ 3
        let dbar: ProcessSet = (0..j).map(ProcessId::new).collect();
        let blocks: Vec<ProcessSet> = (j..n)
            // kset-lint: allow(unchecked-capacity): ids stay below n, and PartitionSpec::new re-validates the layout against the system size
            .map(|i| ProcessSet::singleton(ProcessId::new(i)))
            .collect();
        Some(PartitionSpec::new(n, blocks, dbar))
    }

    /// The Theorem 8 borderline layout (`kn = (k+1)f`): `k + 1` equal
    /// groups `Π0, …, Πk`, each of size `n − f`. Here every group plays a
    /// "decision block"; the last group doubles as `D̄`.
    pub fn theorem8_border(n: usize, f: usize, k: usize) -> Option<Self> {
        if !theorem8_borderline(n, f, k) || f == 0 {
            return None;
        }
        let size = n - f; // = n / (k+1)
        let mut groups: Vec<ProcessSet> = (0..=k)
            .map(|i| (i * size..(i + 1) * size).map(ProcessId::new).collect())
            .collect();
        // kset-lint: allow(panic-in-library): invariant — the collect above builds exactly k+1 ≥ 1 groups, so the pop always succeeds
        let dbar = groups.pop().expect("k+1 ≥ 1 groups");
        Some(PartitionSpec::new(n, groups, dbar))
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `k` of the layout: number of decision blocks + 1.
    pub fn k(&self) -> usize {
        self.blocks.len() + 1
    }

    /// The decision blocks `D1, …, D(k−1)`.
    pub fn blocks(&self) -> &[ProcessSet] {
        &self.blocks
    }

    /// The reduction set `D̄`.
    pub fn dbar(&self) -> ProcessSet {
        self.dbar
    }

    /// `D = D1 ∪ … ∪ D(k−1)`.
    pub fn d_union(&self) -> ProcessSet {
        self.blocks
            .iter()
            .fold(ProcessSet::new(), |acc, b| acc | *b)
    }

    /// All parts in order `D1, …, D(k−1), D̄` — the block list handed to the
    /// partition scheduler and the partition failure detector.
    pub fn all_parts(&self) -> Vec<ProcessSet> {
        let mut parts = self.blocks.clone();
        parts.push(self.dbar);
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn theorem2_layout_shapes() {
        // n = 7, f = 5, ℓ = 2, k = 3: D1 = {p1,p2}, D2 = {p3,p4},
        // D̄ = {p5,p6,p7}.
        let spec = PartitionSpec::theorem2(7, 5, 3).unwrap();
        assert_eq!(spec.k(), 3);
        assert_eq!(spec.blocks()[0], [pid(0), pid(1)].into());
        assert_eq!(spec.blocks()[1], [pid(2), pid(3)].into());
        assert_eq!(spec.dbar(), [pid(4), pid(5), pid(6)].into());
        // Lemma 3: |D̄| ≥ ℓ + 1 = 3, |Di| = ℓ = 2.
        assert!(spec.dbar().len() >= 3);
    }

    #[test]
    fn theorem2_layout_absent_when_solvable() {
        assert!(
            PartitionSpec::theorem2(5, 3, 3).is_none(),
            "k > (n−1)/(n−f)"
        );
        assert!(PartitionSpec::theorem2(7, 5, 3).is_some());
    }

    #[test]
    fn theorem10_layout_shapes() {
        // n = 6, k = 3: j = 4, D̄ = {p1..p4}, D1 = {p5}, D2 = {p6}.
        let spec = PartitionSpec::theorem10(6, 3).unwrap();
        assert_eq!(spec.k(), 3);
        assert_eq!(spec.dbar().len(), 4);
        assert_eq!(spec.blocks().len(), 2);
        assert!(spec.blocks().iter().all(|b| b.len() == 1));
        assert!(spec.dbar().len() >= 3, "j ≥ 3 as the proof requires");
    }

    #[test]
    fn theorem10_layout_bounds() {
        assert!(
            PartitionSpec::theorem10(6, 1).is_none(),
            "k = 1 is solvable"
        );
        assert!(
            PartitionSpec::theorem10(6, 5).is_none(),
            "k = n−1 is solvable"
        );
        for k in 2..=4 {
            assert!(PartitionSpec::theorem10(6, k).is_some());
        }
    }

    #[test]
    fn theorem8_border_layout() {
        // n = 6, k = 2, f = 4: three groups of two.
        let spec = PartitionSpec::theorem8_border(6, 4, 2).unwrap();
        assert_eq!(spec.k(), 3, "k+1 = 3 groups (the last is D̄)");
        assert_eq!(spec.all_parts().len(), 3);
        assert!(spec.all_parts().iter().all(|g| g.len() == 2));
        assert!(
            PartitionSpec::theorem8_border(6, 3, 2).is_none(),
            "12 ≠ 9: not borderline"
        );
    }

    #[test]
    fn parts_cover_and_do_not_overlap() {
        let spec = PartitionSpec::theorem10(7, 3).unwrap();
        let mut seen = ProcessSet::new();
        for part in spec.all_parts() {
            for p in part {
                assert!(seen.insert(p));
            }
        }
        assert_eq!(seen.len(), 7);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn uncovered_processes_rejected() {
        let _ = PartitionSpec::new(3, vec![[pid(0)].into()], [pid(1)].into());
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_parts_rejected() {
        let _ = PartitionSpec::new(2, vec![[pid(0)].into()], [pid(0), pid(1)].into());
    }
}
