//! # kset-impossibility — the paper's impossibility engine, executable
//!
//! The primary contribution of Biely–Robinson–Schmid (OPODIS 2011) is
//! **Theorem 1**: a generic reduction that derives the impossibility of
//! k-set agreement in a model `M` from the impossibility of consensus in a
//! restricted subsystem `M′ = ⟨D̄⟩`, via partitioning. This crate makes the
//! theorem and its three instantiations executable:
//!
//! * [`borders`] — the closed-form solvability borders (Theorems 2, 8, 10,
//!   Corollary 13, plus the older Bouzid–Travers bound for comparison);
//! * [`partition`] — the concrete partition layouts `D1, …, D(k−1), D̄`;
//! * [`pasting`] — the run-pasting machinery of Lemmas 11/12, with the
//!   Definition 2 indistinguishability check built in;
//! * [`theorem1`] — the generic checker: constructs the witnessing runs
//!   for conditions (A), (B), (D) and classifies a candidate algorithm as
//!   directly violated, reduced to consensus-in-`⟨D̄⟩`, or not flagged;
//! * [`theorem2`] — the partially-synchronous border `k ≤ (n−1)/(n−f)`;
//! * [`theorem8`] — the initial-crash border `kn > (k+1)f`, both sides;
//! * [`theorem10`] — (Σk, Ωk) refuted for `2 ≤ k ≤ n−2`, with the
//!   defeating run's failure-detector history re-validated against the
//!   Σk/Ωk class oracles (Lemma 9 on the wire).
//!
//! ```
//! use kset_impossibility::theorem8::border_demo;
//!
//! // n = 6, k = 2: at the border f = 4 the k+1-partition argument
//! // produces a verified failure-free run with 3 distinct decisions.
//! let demo = border_demo(6, 2, 100_000).unwrap();
//! assert!(demo.violates_k_agreement());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod borders;
pub mod partition;
pub mod pasting;
pub mod theorem1;
pub mod theorem10;
pub mod theorem2;
pub mod theorem8;

pub use borders::{
    bouzid_travers_impossible, corollary13_solvable, theorem10_impossible, theorem2_impossible,
    theorem8_border_cells, theorem8_borderline, theorem8_solvable, THEOREM8_BORDER_GRID,
};
pub use partition::PartitionSpec;
pub use pasting::{
    lemma12, lemma12_no_fd, lemma12_with, solo_run, solo_run_no_fd, PastedRun, SoloRun,
};
pub use theorem1::{analyze, analyze_no_fd, analyze_with, Theorem1Analysis, Theorem1Outcome};
