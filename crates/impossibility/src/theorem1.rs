//! The Theorem 1 checker: the paper's generic impossibility theorem as an
//! executable analysis.
//!
//! Theorem 1 shows that a k-set agreement algorithm `A` for model `M`
//! cannot exist when
//!
//! * **(A)** runs exist where the blocks `D1, …, D(k−1)` decide distinct
//!   values without outside input (`R(D) ≠ ∅`);
//! * **(B)** such runs are compatible (for `D̄`) with runs where
//!   additionally `D̄` hears nothing from `D` until `D` decided
//!   (`R(D) ≼_D̄ R(D, D̄)`);
//! * **(C)** consensus is unsolvable in the restricted model `M′ = ⟨D̄⟩`;
//! * **(D)** runs of the restricted algorithm `A|D̄` are compatible with
//!   runs of `A` (`M′_{A|D̄} ≼_D̄ M_A`).
//!
//! A *simulator* cannot quantify over infinitely many runs, but it can do
//! exactly what the paper's instantiations (Theorems 2 and 10) do:
//! **construct** the witnessing runs. [`analyze`] builds the Lemma 12
//! pasted run to witness (A) — with the Definition 2 check of condition (B)
//! built in — replays `A|D̄` to verify (D) constructively, and classifies
//! the result:
//!
//! * if the single pasted run already shows more than `k` distinct
//!   decisions, the algorithm is refuted outright
//!   ([`Theorem1Outcome::DirectViolation`]);
//! * if the blocks decide `k − 1` distinct values and `D̄` reaches a common
//!   decision in isolation, `A|D̄` behaves as a consensus algorithm for
//!   `⟨D̄⟩` — combined with the caller-supplied fact (C) this is the
//!   paper's reduction ([`Theorem1Outcome::ReductionEstablished`]);
//! * if some block cannot decide in isolation, condition (A) fails and the
//!   checker reports that the candidate *may* be sound
//!   ([`Theorem1Outcome::ConditionAFailed`]) — the "quick verification
//!   tool" reading of the paper's Remarks.

use std::collections::BTreeSet;

use kset_sim::indist::indistinguishable_for_set;
use kset_sim::sched::round_robin::RoundRobin;
use kset_sim::sched::scripted::Scripted;
use kset_sim::ProcessSet;
use kset_sim::{
    restriction_plan, CrashPlan, NoOracle, Oracle, Process, Restricted, RunReport, Simulation,
};

use crate::partition::PartitionSpec;
use crate::pasting::PastedRun;

/// Classification of a Theorem 1 analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Theorem1Outcome {
    /// The constructed pasted run violates k-Agreement outright.
    DirectViolation {
        /// Distinct decisions observed in the single pasted run.
        distinct: usize,
        /// The `k` of the task.
        k: usize,
    },
    /// Conditions (A), (B), (D) verified constructively; the blocks pin
    /// `k − 1` values and `D̄` decides a single common value in isolation —
    /// `A|D̄` would solve consensus in `⟨D̄⟩`. If the caller's model
    /// knowledge says consensus is unsolvable there (condition (C)),
    /// Theorem 1 applies and `A` cannot solve k-set agreement.
    ReductionEstablished,
    /// Some block failed to decide in isolation within the step budget:
    /// condition (A) not witnessed; the candidate may be sound.
    ConditionAFailed {
        /// The first block that could not decide in isolation.
        block: ProcessSet,
    },
}

/// Full evidence produced by [`analyze`].
#[derive(Debug, Clone)]
pub struct Theorem1Analysis<V> {
    /// The classification.
    pub outcome: Theorem1Outcome,
    /// Whether every decision block decided in isolation with pairwise
    /// distinct values — the (dec-D) part of condition (A).
    pub condition_a: bool,
    /// Whether the Lemma 12 pasting check passed — the constructive
    /// witness for condition (B).
    pub condition_b_verified: bool,
    /// Whether the `A|D̄` replay matched the solo run of `D̄` — the
    /// constructive witness for condition (D).
    pub condition_d_verified: bool,
    /// The pasted run (when constructed).
    pub pasted: Option<PastedRun<V>>,
}

impl<V: Clone + Ord> Theorem1Analysis<V> {
    /// The paper's final verdict, given the model fact (C): does Theorem 1
    /// refute the algorithm?
    pub fn refutes(&self, consensus_impossible_in_dbar: bool) -> bool {
        match self.outcome {
            Theorem1Outcome::DirectViolation { .. } => true,
            Theorem1Outcome::ReductionEstablished => consensus_impossible_in_dbar,
            Theorem1Outcome::ConditionAFailed { .. } => false,
        }
    }
}

/// Runs the Theorem 1 analysis for an algorithm with a failure-detector
/// oracle (use [`analyze_no_fd`] for oracle-less algorithms).
///
/// `make_inputs` must give every process a distinct proposal (the paper's
/// `|V| > n` assumption); `mk_oracle` must produce observationally
/// identical oracles per call.
pub fn analyze<P, O>(
    make_inputs: impl Fn() -> Vec<P::Input>,
    mk_oracle: impl Fn() -> O,
    spec: &PartitionSpec,
    max_steps: u64,
) -> Theorem1Analysis<P::Output>
where
    P: Process,
    P::Input: Clone,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let default: crate::pasting::BlockSchedulers<'_, P::Msg> = &|_, _| Box::new(RoundRobin::new());
    analyze_with::<P, O>(make_inputs, mk_oracle, spec, default, max_steps)
}

/// [`analyze`] with per-block scheduler control over the solo runs (the
/// adversary's intra-block freedom — Theorem 10's proof needs `D̄` to run
/// an unfavourable schedule).
pub fn analyze_with<P, O>(
    make_inputs: impl Fn() -> Vec<P::Input>,
    mk_oracle: impl Fn() -> O,
    spec: &PartitionSpec,
    mk_sched: crate::pasting::BlockSchedulers<'_, P::Msg>,
    max_steps: u64,
) -> Theorem1Analysis<P::Output>
where
    P: Process,
    P::Input: Clone,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let k = spec.k();
    // --- Construct the R(D, D̄) witness: the Lemma 12 pasted run. ---
    let parts = spec.all_parts();
    let pasted =
        crate::pasting::lemma12_with::<P, O>(&make_inputs, &mk_oracle, &parts, mk_sched, max_steps);

    // (dec-D): every decision block decided in isolation, and the blocks
    // admit pairwise distinct representative values `v1, …, v(k−1)`. (The
    // last entry of `parts` is D̄, whose isolated decisions are not part of
    // (dec-D) but must exist for the reduction.)
    let mut block_value_sets: Vec<BTreeSet<P::Output>> = Vec::new();
    let mut failed_block: Option<ProcessSet> = None;
    for (i, (solo, block)) in pasted.solos.iter().zip(&parts).enumerate() {
        let decided: BTreeSet<P::Output> = block
            .iter()
            .filter_map(|p| solo.report.decisions[p.index()].clone())
            .collect();
        if decided.is_empty() {
            failed_block = Some(*block);
            break;
        }
        let is_dbar = i + 1 == parts.len();
        if !is_dbar {
            block_value_sets.push(decided);
        }
    }
    let condition_a = failed_block.is_none() && has_distinct_representatives(&block_value_sets);
    let condition_b_verified = pasted.verified;

    // --- Condition (D): replay A|D̄ and compare with the solo run of D̄. ---
    let condition_d_verified = verify_condition_d::<P, O>(
        &make_inputs,
        &mk_oracle,
        spec.dbar(),
        pasted
            .solos
            .last()
            .map(|s| &s.report)
            // kset-lint: allow(panic-in-library): invariant — PartitionSpec always carries D̄ as its final part, so the pasted run has at least one solo
            .expect("spec has at least D̄"),
        max_steps,
    );

    // --- Classify. ---
    let outcome = if let Some(block) = failed_block {
        Theorem1Outcome::ConditionAFailed { block }
    } else if !condition_a {
        Theorem1Outcome::ConditionAFailed {
            block: spec.blocks().first().copied().unwrap_or_default(),
        }
    } else {
        let distinct = pasted.report.distinct_decisions.len();
        if distinct > k {
            Theorem1Outcome::DirectViolation { distinct, k }
        } else {
            Theorem1Outcome::ReductionEstablished
        }
    };
    Theorem1Analysis {
        outcome,
        condition_a,
        condition_b_verified,
        condition_d_verified,
        pasted: Some(pasted),
    }
}

/// Oracle-less [`analyze`].
pub fn analyze_no_fd<P>(
    make_inputs: impl Fn() -> Vec<P::Input>,
    spec: &PartitionSpec,
    max_steps: u64,
) -> Theorem1Analysis<P::Output>
where
    P: Process<Fd = ()>,
    P::Input: Clone,
{
    analyze::<P, NoOracle>(make_inputs, || NoOracle, spec, max_steps)
}

/// Whether the value sets admit a system of distinct representatives
/// (pick one `vi` per set, all distinct) — the shape (dec-D) requires of
/// the blocks' isolated decisions. Backtracking; the number of blocks is
/// `k − 1`, so this is tiny.
fn has_distinct_representatives<V: Clone + Ord>(sets: &[BTreeSet<V>]) -> bool {
    fn rec<V: Clone + Ord>(sets: &[BTreeSet<V>], idx: usize, used: &mut BTreeSet<V>) -> bool {
        if idx == sets.len() {
            return true;
        }
        for v in &sets[idx] {
            if !used.contains(v) {
                used.insert(v.clone());
                if rec(sets, idx + 1, used) {
                    return true;
                }
                used.remove(v);
            }
        }
        false
    }
    rec(sets, 0, &mut BTreeSet::new())
}

/// Constructive condition (D): run the *restricted* algorithm `A|D̄`
/// (Definition 1: sends outside `D̄` dropped, `Π \ D̄` initially dead) under
/// the same intra-`D̄` schedule as the solo run, and check `D̄`-indistin-
/// guishability. This witnesses that for the run of `A|D̄` there is a run
/// of `A` (the solo run) the `D̄` processes cannot tell apart.
fn verify_condition_d<P, O>(
    make_inputs: &impl Fn() -> Vec<P::Input>,
    mk_oracle: &impl Fn() -> O,
    dbar: ProcessSet,
    dbar_solo: &RunReport<P::Output>,
    max_steps: u64,
) -> bool
where
    P: Process,
    P::Input: Clone,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let inputs = make_inputs();
    let n = inputs.len();
    let wrapped: Vec<(ProcessSet, P::Input)> = inputs.into_iter().map(|x| (dbar, x)).collect();
    let plan = restriction_plan(n, dbar, CrashPlan::none());
    // kset-lint: allow(unchecked-capacity): theorem-construction entry point mirroring Simulation::with_oracle's documented panicking contract for oversized input vectors
    let mut sim: Simulation<Restricted<P>, O> = Simulation::with_oracle(wrapped, mk_oracle(), plan);
    // Replay the solo schedule; fall back to round-robin if it runs dry
    // before everyone in D̄ decided (should not happen for deterministic
    // algorithms, but keeps the check robust).
    let mut replay = Scripted::new(dbar_solo.trace.schedule());
    let mut report = sim.run_to_report(&mut replay, max_steps);
    if !dbar.iter().all(|p| report.decisions[p.index()].is_some()) {
        report = sim.run_to_report(&mut RoundRobin::new(), max_steps);
    }
    indistinguishable_for_set(&report.trace, &dbar_solo.trace, dbar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::algorithms::naive::DecideOwn;
    use kset_core::algorithms::two_stage::{two_stage_inputs, TwoStage};
    use kset_core::task::distinct_proposals;

    #[test]
    fn decide_own_is_directly_refuted() {
        // DecideOwn under the Theorem 2 layout for n = 5, f = 3, k = 2:
        // D1 = {p1, p2}, D̄ = {p3, p4, p5}. Every block decides its members'
        // own values: 5 distinct > k = 2.
        let spec = PartitionSpec::theorem2(5, 3, 2).unwrap();
        let analysis = analyze_no_fd::<DecideOwn>(|| distinct_proposals(5), &spec, 10_000);
        assert!(analysis.condition_a, "blocks decide in isolation");
        assert!(analysis.condition_b_verified, "pasting must verify");
        assert!(analysis.condition_d_verified, "restriction must correspond");
        assert!(matches!(
            analysis.outcome,
            Theorem1Outcome::DirectViolation { distinct: 5, k: 2 }
        ));
        assert!(analysis.refutes(true));
        assert!(analysis.refutes(false), "a direct violation needs no (C)");
    }

    #[test]
    fn two_stage_with_small_threshold_reduces() {
        // Two-stage with L = n − f = 2 on n = 5, f = 3, k = 2 (Theorem 2
        // says impossible): D1 = {p1,p2} decides alone; D̄ = {p3,p4,p5}
        // decides a COMMON value in isolation (L = 2 < |D̄|), so the checker
        // lands on the reduction: A|D̄ would solve consensus in ⟨D̄⟩, which
        // is impossible there (1 crash allowed) ⇒ refuted.
        let spec = PartitionSpec::theorem2(5, 3, 2).unwrap();
        let analysis = analyze_no_fd::<TwoStage>(
            || two_stage_inputs(2, &distinct_proposals(5)),
            &spec,
            50_000,
        );
        assert!(analysis.condition_a);
        assert!(analysis.condition_b_verified);
        assert!(analysis.condition_d_verified);
        assert_eq!(analysis.outcome, Theorem1Outcome::ReductionEstablished);
        assert!(analysis.refutes(true), "with (C) the reduction refutes A");
        assert!(!analysis.refutes(false));
    }

    #[test]
    fn sound_algorithm_fails_condition_a() {
        // Two-stage with the MAJORITY threshold on n = 5: a 2-process block
        // cannot gather L − 1 = 2 remote stage-1 messages in isolation, so
        // condition (A) fails — the checker does not flag the algorithm.
        let spec = PartitionSpec::theorem2(5, 3, 2).unwrap(); // blocks of size 2
        let analysis = analyze_no_fd::<TwoStage>(
            || two_stage_inputs(3, &distinct_proposals(5)),
            &spec,
            20_000,
        );
        assert!(matches!(
            analysis.outcome,
            Theorem1Outcome::ConditionAFailed { .. }
        ));
        assert!(!analysis.refutes(true));
    }

    #[test]
    fn pasted_run_is_included_in_the_evidence() {
        let spec = PartitionSpec::theorem2(5, 3, 2).unwrap();
        let analysis = analyze_no_fd::<DecideOwn>(|| distinct_proposals(5), &spec, 10_000);
        let pasted = analysis.pasted.expect("evidence present");
        assert!(pasted.verified);
        assert_eq!(pasted.report.failure_pattern.num_faulty(), 0);
    }
}
