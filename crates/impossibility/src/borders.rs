//! Closed-form solvability borders from the paper's theorems.
//!
//! These predicates are the "ground truth" rows of the experiment tables
//! (EXPERIMENTS.md); the simulation-based demos in the sibling modules
//! regenerate the same borders constructively.

use kset_sim::sweep::{cell_seed, GridCell};

/// The divisible Theorem 8 border points `(n, k)` — every grid point with
/// `kn = (k + 1) f` for an integer `f ≥ 1` that the experiments binary,
/// the E3/E7 benches and the conformance suites share. One definition:
/// extending the grid here extends every consumer.
pub const THEOREM8_BORDER_GRID: &[(usize, usize)] = &[
    (4, 1),
    (6, 1),
    (8, 1),
    (6, 2),
    (9, 2),
    (12, 2),
    (8, 3),
    (12, 3),
    (10, 4),
];

/// [`THEOREM8_BORDER_GRID`] as sweep cells: `f = kn/(k + 1)` (the exact
/// border) and the deterministic [`cell_seed`] of `grid_seed` and the
/// point's position — the form `kset_sim::scenario::Scenario::from_cell`
/// and the differential conformance suite consume.
pub fn theorem8_border_cells(grid_seed: u64) -> Vec<GridCell> {
    THEOREM8_BORDER_GRID
        .iter()
        .enumerate()
        .map(|(index, &(n, k))| {
            debug_assert!((k * n).is_multiple_of(k + 1), "divisible border point");
            GridCell {
                index,
                n,
                f: k * n / (k + 1),
                k,
                seed: cell_seed(grid_seed, index),
            }
        })
        .collect()
}

/// Theorem 2: k-set agreement is **impossible** with synchronous processes,
/// asynchronous communication, atomic broadcast and `f` failures (of which
/// `f − 1` may be initial and one mid-run) when
///
/// ```text
/// k ≤ (n − 1) / (n − f)          (equivalently k·(n − f) + 1 ≤ n)
/// ```
///
/// By Corollary 5 the impossibility carries over to all weaker models,
/// including `M_ASYNC`.
pub fn theorem2_impossible(n: usize, f: usize, k: usize) -> bool {
    assert!(k >= 1 && n >= 1);
    if f >= n {
        return true; // everyone may fail: nothing is solvable wait-free
    }
    k * (n - f) < n
}

/// Lemma 3's arithmetic: with `ℓ = n − f`, the Theorem 2 layout needs
/// `k·ℓ + 1 ≤ n`, which leaves `|D̄| = n − (k−1)ℓ ≥ ℓ + 1` processes for the
/// consensus reduction. Returns `ℓ` when the layout exists.
pub fn theorem2_layout_ell(n: usize, f: usize, k: usize) -> Option<usize> {
    if f >= n {
        return None;
    }
    let ell = n - f;
    (k * ell < n).then_some(ell)
}

/// Theorem 8: with up to `f` **initially dead** processes, k-set agreement
/// is solvable **iff**
///
/// ```text
/// k·n > (k + 1)·f          (equivalently k > f / (n − f))
/// ```
pub fn theorem8_solvable(n: usize, f: usize, k: usize) -> bool {
    assert!(k >= 1 && n >= 1);
    k * n > (k + 1) * f
}

/// The borderline of Theorem 8 — `k·n = (k+1)·f` — where the standard
/// (k+1)-partition argument applies: the system splits into `k + 1` groups
/// of `n − f = n/(k+1)` processes each.
pub fn theorem8_borderline(n: usize, f: usize, k: usize) -> bool {
    k * n == (k + 1) * f
}

/// Theorem 10: no (n−1)-resilient algorithm solves k-set agreement in
/// `⟨M_ASYNC, (Σk, Ωk)⟩` for `2 ≤ k ≤ n − 2`.
pub fn theorem10_impossible(n: usize, k: usize) -> bool {
    k >= 2 && k + 2 <= n
}

/// Corollary 13: (Σk, Ωk) solves k-set agreement (wait-free) **iff**
/// `k = 1` or `k = n − 1`.
pub fn corollary13_solvable(n: usize, k: usize) -> bool {
    assert!(n >= 2 && k >= 1 && k < n, "need 1 ≤ k ≤ n−1");
    k == 1 || k == n - 1
}

/// The previously best impossibility bound for (Σk, Ωk), due to Bouzid and
/// Travers (cited as [5, Theorem 2]): impossible if `1 < 2k² ≤ n`. Strictly
/// narrower than Theorem 10; used for the comparison column of
/// experiment E4. (The bound is only meaningful for `k ≥ 2`: (Σ1, Ω1)
/// solves consensus, so we read the `1 < 2k²` side as excluding `k = 1`.)
pub fn bouzid_travers_impossible(n: usize, k: usize) -> bool {
    k >= 2 && 2 * k * k <= n
}

/// FloodMin's round requirement at the favourable model point: `⌊f/k⌋ + 1`
/// rounds solve k-set agreement for **any** `f < n` — no border at all,
/// which is the contrast row of experiment E1.
pub fn synchronous_solvable(n: usize, f: usize, _k: usize) -> bool {
    f < n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem2_examples() {
        // n = 5, f = 3: impossible for k ≤ (5−1)/(5−3) = 2.
        assert!(theorem2_impossible(5, 3, 1));
        assert!(theorem2_impossible(5, 3, 2));
        assert!(!theorem2_impossible(5, 3, 3));
        // Consensus with a single failure: FLP for every n ≥ 2.
        for n in 2..12 {
            assert!(theorem2_impossible(n, 1, 1), "FLP at n={n}");
        }
    }

    #[test]
    fn theorem2_wait_free_case() {
        // f = n − 1 (wait-free): impossible for every k ≤ n − 1.
        let n = 6;
        for k in 1..n {
            assert!(theorem2_impossible(n, n - 1, k));
        }
    }

    #[test]
    fn theorem2_layout_exists_iff_impossible() {
        for n in 2..12 {
            for f in 1..n {
                for k in 1..n {
                    assert_eq!(
                        theorem2_layout_ell(n, f, k).is_some(),
                        theorem2_impossible(n, f, k),
                        "n={n} f={f} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma3_dbar_size() {
        // Whenever the layout exists, |D̄| = n − (k−1)ℓ ≥ ℓ + 1.
        for n in 2..14 {
            for f in 1..n {
                for k in 1..n {
                    if let Some(ell) = theorem2_layout_ell(n, f, k) {
                        let dbar = n - (k - 1) * ell;
                        assert!(dbar > ell, "n={n} f={f} k={k}: |D̄|={dbar} < ℓ+1");
                    }
                }
            }
        }
    }

    #[test]
    fn theorem8_examples() {
        // n = 6, k = 2: solvable iff 12 > 3f, i.e. f ≤ 3.
        assert!(theorem8_solvable(6, 3, 2));
        assert!(!theorem8_solvable(6, 4, 2));
        assert!(theorem8_borderline(6, 4, 2));
        // Consensus: majority requirement kn > 2f ⇔ n > 2f.
        assert!(theorem8_solvable(5, 2, 1));
        assert!(!theorem8_solvable(4, 2, 1));
        assert!(theorem8_borderline(4, 2, 1));
    }

    #[test]
    fn theorem8_monotone_in_k_and_antitone_in_f() {
        for n in 2..12 {
            for f in 0..n {
                for k in 1..n {
                    if theorem8_solvable(n, f, k) {
                        assert!(theorem8_solvable(n, f, k + 1), "monotone in k");
                        if f > 0 {
                            assert!(theorem8_solvable(n, f - 1, k), "antitone in f");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn theorem10_and_corollary13_partition_the_range() {
        for n in 3..12 {
            for k in 1..n {
                assert_ne!(
                    corollary13_solvable(n, k),
                    theorem10_impossible(n, k),
                    "n={n} k={k}: solvable xor impossible"
                );
            }
        }
    }

    #[test]
    fn theorem10_strictly_extends_bouzid_travers() {
        // Every (n, k) the old bound covers, the new one covers too…
        for n in 2usize..40 {
            for k in 2..n.saturating_sub(1) {
                if bouzid_travers_impossible(n, k) {
                    assert!(theorem10_impossible(n, k), "n={n} k={k}");
                }
            }
        }
        // …and the new bound covers points the old one misses:
        assert!(theorem10_impossible(6, 4));
        assert!(!bouzid_travers_impossible(6, 4), "2k²=32 > 6");
        assert!(theorem10_impossible(5, 3));
        assert!(!bouzid_travers_impossible(5, 3));
    }

    #[test]
    fn synchronous_point_has_no_border() {
        for n in 2..10 {
            for f in 0..n {
                assert!(synchronous_solvable(n, f, 1));
            }
        }
    }
}
