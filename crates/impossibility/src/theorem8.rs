//! Theorem 8, executably: the exact initial-crash border.
//!
//! *With up to `f` initially dead processes, k-set agreement is solvable
//! iff `kn > (k+1)f`.*
//!
//! * **Possibility side** ([`possibility_demo`]): the generalized two-stage
//!   protocol with `L = n − f` run against random schedules and every
//!   initial-crash pattern size — at most `⌊n/(n−f)⌋ ≤ k` distinct
//!   decisions, every correct process decides.
//! * **Impossibility side at the border** ([`border_demo`]): when
//!   `kn = (k+1)f` the system splits into `k + 1` groups of `n − f`
//!   processes; each group's solo run (everyone else initially dead)
//!   decides its own value, and the Lemma-12 pasting yields a single
//!   **failure-free** run with `k + 1` distinct decisions — the classic
//!   partitioning argument of Section VI, executed and verified.

use kset_core::algorithms::two_stage::{kset_threshold, two_stage_inputs, TwoStage};
use kset_core::runner::run_seeded;
use kset_core::task::{distinct_proposals, KSetTask, Val};
use kset_sim::sweep::cell_seed;
use kset_sim::{CrashPlan, ProcessId};

use crate::borders::{theorem8_borderline, theorem8_solvable};
use crate::partition::PartitionSpec;
use crate::pasting::{lemma12_no_fd, PastedRun};

/// Outcome of the possibility-side demo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PossibilityDemo {
    /// Grid point.
    pub n: usize,
    /// Initial-crash budget actually exercised.
    pub f: usize,
    /// Agreement parameter.
    pub k: usize,
    /// Runs executed.
    pub runs: usize,
    /// Whether every run satisfied k-Agreement + Validity + Termination.
    pub all_hold: bool,
    /// The maximum number of distinct decisions observed.
    pub max_distinct: usize,
}

/// Runs the two-stage protocol with `L = n − f` over `seeds` random
/// schedules, each with `f` initially dead processes (rotating which), and
/// judges every run.
///
/// # Panics
///
/// Panics if `(n, f, k)` is not in the solvable region (`kn ≤ (k+1)f`) —
/// use [`border_demo`] there.
pub fn possibility_demo(n: usize, f: usize, k: usize, seeds: u64) -> PossibilityDemo {
    assert!(
        theorem8_solvable(n, f, k),
        "possibility demo requires kn > (k+1)f; use border_demo at/below the border"
    );
    let l = kset_threshold(n, f);
    let values = distinct_proposals(n);
    let task = KSetTask::new(n, k);
    let mut all_hold = true;
    let mut max_distinct = 0;
    for seed in 0..seeds {
        // Rotate the initially-dead set with the seed; de-duplication may
        // shrink it, so top up deterministically.
        let mut dead_set: kset_sim::ProcessSet = (0..f)
            .map(|i| ProcessId::new(((seed as usize) + i * 2) % n))
            .collect();
        let mut cursor = 0;
        while dead_set.len() < f {
            dead_set.insert(ProcessId::new(cursor % n));
            cursor += 1;
        }
        let plan = CrashPlan::initially_dead(dead_set);
        // Schedule seeds come from the sweep module's shared derivation, so
        // "run i of grid cell (n, f, k)" is the same adversarial schedule on
        // every host and at every parallelism level.
        let schedule_seed = cell_seed(
            ((n as u64) << 32) | ((f as u64) << 16) | k as u64,
            seed as usize,
        );
        let report =
            run_seeded::<TwoStage>(two_stage_inputs(l, &values), plan, schedule_seed, 2_000_000);
        let verdict = task.judge(&values, &report);
        max_distinct = max_distinct.max(verdict.distinct);
        if !verdict.holds() {
            all_hold = false;
        }
    }
    PossibilityDemo {
        n,
        f,
        k,
        runs: seeds as usize,
        all_hold,
        max_distinct,
    }
}

/// The border-case impossibility construction at `kn = (k+1)f`.
#[derive(Debug, Clone)]
pub struct BorderDemo {
    /// Grid point (`f = kn/(k+1)`).
    pub n: usize,
    /// The borderline failure budget.
    pub f: usize,
    /// Agreement parameter.
    pub k: usize,
    /// The verified pasted run with its `k + 1` distinct decisions.
    pub pasted: PastedRun<Val>,
}

impl BorderDemo {
    /// Whether the construction succeeded: pasting verified, failure-free,
    /// and more than `k` distinct decisions.
    pub fn violates_k_agreement(&self) -> bool {
        self.pasted.verified
            && self.pasted.report.failure_pattern.num_faulty() == 0
            && self.pasted.distinct_decisions() > self.k
    }
}

/// Builds the `k + 1`-partition run at the border. Returns `None` when
/// `kn ≠ (k+1)f` for every `f`, i.e. `(k+1) ∤ kn` — the argument needs the
/// exact boundary.
pub fn border_demo(n: usize, k: usize, max_steps: u64) -> Option<BorderDemo> {
    if !(k * n).is_multiple_of(k + 1) {
        return None;
    }
    let f = k * n / (k + 1);
    if f == 0 {
        return None;
    }
    debug_assert!(theorem8_borderline(n, f, k));
    let spec = PartitionSpec::theorem8_border(n, f, k)?;
    let l = kset_threshold(n, f); // = n/(k+1) = group size
    let pasted = lemma12_no_fd::<TwoStage>(
        || two_stage_inputs(l, &distinct_proposals(n)),
        &spec.all_parts(),
        max_steps,
    );
    Some(BorderDemo { n, f, k, pasted })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn possibility_holds_inside_the_region() {
        // n = 6, k = 2, f = 3: 12 > 9.
        let demo = possibility_demo(6, 3, 2, 8);
        assert!(demo.all_hold);
        assert!(demo.max_distinct <= 2);
    }

    #[test]
    fn consensus_possibility_with_minority_initial_crashes() {
        // k = 1, n = 5, f = 2: majority correct.
        let demo = possibility_demo(5, 2, 1, 8);
        assert!(demo.all_hold);
        assert_eq!(demo.max_distinct, 1);
    }

    #[test]
    fn border_construction_defeats_the_protocol() {
        // n = 6, k = 2 ⇒ f = 4, three groups of two: the pasted run is
        // failure-free and shows 3 > k = 2 distinct decisions.
        let demo = border_demo(6, 2, 100_000).expect("border exists");
        assert_eq!(demo.f, 4);
        assert!(demo.violates_k_agreement());
        assert_eq!(demo.pasted.distinct_decisions(), 3);
    }

    #[test]
    fn border_construction_for_consensus() {
        // k = 1, n = 4 ⇒ f = 2: the familiar "no consensus with half the
        // processes initially dead" partition into two halves.
        let demo = border_demo(4, 1, 100_000).expect("border exists");
        assert_eq!(demo.f, 2);
        assert!(demo.violates_k_agreement());
        assert_eq!(demo.pasted.distinct_decisions(), 2);
    }

    #[test]
    fn border_demo_requires_divisibility() {
        // k = 2, n = 7: kn = 14, (k+1) = 3 ∤ 14.
        assert!(border_demo(7, 2, 1_000).is_none());
    }

    #[test]
    fn border_scales() {
        for (n, k) in [(6, 1), (9, 2), (8, 3), (10, 4)] {
            let demo = border_demo(n, k, 200_000).expect("border exists");
            assert!(demo.violates_k_agreement(), "n={n} k={k}");
            assert_eq!(demo.pasted.distinct_decisions(), k + 1, "n={n} k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "possibility demo requires")]
    fn possibility_demo_rejects_unsolvable_points() {
        let _ = possibility_demo(6, 4, 2, 1);
    }
}
