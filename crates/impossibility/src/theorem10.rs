//! Theorem 10, executably: (Σk, Ωk) is too weak for k-set agreement,
//! `2 ≤ k ≤ n − 2`.
//!
//! The proof equips a candidate algorithm with the *stronger* partition
//! detector (Σ′k, Ω′k) of Definition 7 (Lemma 9 makes that legitimate),
//! splits Π into `D̄ = {p1, …, pj}` (`j = n − k + 1 ≥ 3`) plus `k − 1`
//! singletons, and uses the pasting Lemmas 11/12 to build runs in which
//! every block decides in isolation. This module executes that playbook
//! against a candidate algorithm:
//!
//! * the **oracle** is a [`PartitionSigmaOmega`] whose pre-stabilization
//!   leader windows point inside each block (exactly the freedom
//!   Definition 7 grants the adversary);
//! * the solo run of `D̄` uses a *split scheduler*: the first few steps
//!   isolate the window leaders of `D̄` so they commit to their own values
//!   before hearing each other — the "sufficiently asynchronous" schedule
//!   of the proof;
//! * the recorded failure-detector histories of the violating run are
//!   re-validated against the Σk and Ωk oracles (`kset_fd::checkers`) —
//!   the executable Lemma 9: the run the candidate loses to is a perfectly
//!   legal (Σk, Ωk) run.

use kset_core::algorithms::naive::LeaderAdopt;
use kset_core::task::{distinct_proposals, Val};
use kset_fd::{
    check_omega_k, check_partition_sigma, check_sigma_k, History, LeaderSample,
    PartitionSigmaOmega, QuorumSample, Recorder, SigmaOmegaSample,
};
use kset_sim::sched::round_robin::RoundRobin;
use kset_sim::sched::{Choice, Delivery, Scheduler, SimView};
use kset_sim::{Oracle, Process, ProcessId, Time};

use crate::partition::PartitionSpec;
use crate::theorem1::{analyze_with, Theorem1Analysis};

/// A scheduler that first lets each process in `solo_first` take one step
/// with no delivery (committing leaders to their own values), then falls
/// back to fair round-robin with eager delivery.
#[derive(Debug, Clone)]
pub struct SplitScheduler {
    solo_first: Vec<ProcessId>,
    fallback: RoundRobin,
}

impl SplitScheduler {
    /// Creates the scheduler.
    pub fn new(solo_first: Vec<ProcessId>) -> Self {
        SplitScheduler {
            solo_first,
            fallback: RoundRobin::new(),
        }
    }
}

impl<M> Scheduler<M> for SplitScheduler {
    fn next(&mut self, view: &SimView<'_, M>) -> Option<Choice> {
        while let Some(pid) = self.solo_first.first().copied() {
            self.solo_first.remove(0);
            if view.is_alive(pid) {
                return Some(Choice {
                    pid,
                    delivery: Delivery::None,
                });
            }
        }
        Scheduler::<M>::next(&mut self.fallback, view)
    }
}

/// The evidence bundle of the Theorem 10 demo.
#[derive(Debug, Clone)]
pub struct Theorem10Demo {
    /// System size.
    pub n: usize,
    /// Agreement parameter (`2 ≤ k ≤ n − 2`).
    pub k: usize,
    /// The Theorem 1 analysis of the candidate under (Σ′k, Ω′k).
    pub analysis: Theorem1Analysis<Val>,
    /// Whether the violating run's Σ history satisfies Definition 7
    /// part 1 (per-block Σ).
    pub partition_sigma_valid: bool,
    /// Whether the same history also satisfies plain Σk — Lemma 9, sigma
    /// half.
    pub sigma_k_valid: bool,
    /// Whether the Ω history satisfies Ωk — Lemma 9, omega half.
    pub omega_k_valid: bool,
}

impl Theorem10Demo {
    /// The theorem's verdict on the candidate: condition (C) holds in
    /// `⟨D̄⟩` (the restricted detector is too weak for consensus — the
    /// paper's step (C) via Neiger's Ω2 ≺ Ω), so any reduction or direct
    /// violation refutes it.
    pub fn refuted(&self) -> bool {
        self.analysis.refutes(true)
    }

    /// Whether the run defeating the candidate is a *legal* (Σk, Ωk) run
    /// (Lemma 9 verified on this very history).
    pub fn history_legal_for_sigma_omega_k(&self) -> bool {
        self.partition_sigma_valid && self.sigma_k_valid && self.omega_k_valid
    }
}

/// The leader set `LD` of the demo: per the proof of Theorem 10(C), `LD`
/// intersects `D̄` in exactly two processes and takes the remaining
/// `k − 2` ids from the singleton blocks.
pub fn demo_ld(spec: &PartitionSpec) -> LeaderSample {
    let k = spec.k();
    let mut ld: LeaderSample = spec.dbar().iter().take(2).collect();
    for block in spec.blocks().iter().take(k - 2) {
        ld.extend(block.iter());
    }
    assert_eq!(ld.len(), k, "LD must have k ids");
    ld
}

/// Runs the Theorem 10 playbook against the [`LeaderAdopt`] candidate.
/// Returns `None` outside `2 ≤ k ≤ n − 2`.
pub fn demo(n: usize, k: usize, max_steps: u64) -> Option<Theorem10Demo> {
    demo_candidate::<LeaderAdopt>(|| distinct_proposals(n), n, k, max_steps)
}

/// The playbook for any candidate using the (Σk, Ωk) sample type.
pub fn demo_candidate<P>(
    make_inputs: impl Fn() -> Vec<P::Input>,
    n: usize,
    k: usize,
    max_steps: u64,
) -> Option<Theorem10Demo>
where
    P: Process<Fd = SigmaOmegaSample, Output = Val>,
    P::Input: Clone,
{
    let spec = PartitionSpec::theorem10(n, k)?;
    let ld = demo_ld(&spec);
    // Stabilization strictly after every step of the run (Lemma 11 step 5
    // picks t_GST after all decisions); the validation below samples the
    // post-GST suffix explicitly.
    let tgst = Time::new(max_steps.saturating_mul(4) + 1);
    let mk_oracle = || PartitionSigmaOmega::new(n, spec.all_parts(), tgst, ld);

    // Per-block solo schedulers: D̄ (the last part) runs the split
    // schedule that lets its window leaders commit before mixing.
    let parts = spec.all_parts();
    let dbar_idx = parts.len() - 1;
    let window: Vec<ProcessId> = {
        // The pre-GST Ω window of D̄: its k smallest members (as produced
        // by the partition detector).
        spec.dbar().iter().take(k).collect()
    };
    let mk_sched: crate::pasting::BlockSchedulers<'_, P::Msg> = &|i, _block| {
        if i == dbar_idx {
            Box::new(SplitScheduler::new(window.clone()))
        } else {
            Box::new(RoundRobin::new())
        }
    };
    let analysis = analyze_with::<P, _>(&make_inputs, mk_oracle, &spec, mk_sched, max_steps);

    // Re-execute the pasted run with a recording oracle to validate the
    // histories (Lemma 9 on the wire).
    let (partition_sigma_valid, sigma_k_valid, omega_k_valid) = match &analysis.pasted {
        Some(pasted) => {
            let schedule = pasted.report.trace.schedule();
            let mut rec = Recorder::new(mk_oracle());
            // kset-lint: allow(unchecked-capacity): theorem-construction entry point mirroring Simulation::with_oracle's documented panicking contract for oversized input vectors
            let mut sim: kset_sim::Simulation<P, _> = kset_sim::Simulation::with_oracle(
                make_inputs(),
                &mut rec,
                kset_sim::CrashPlan::none(),
            );
            let mut replay = kset_sim::sched::scripted::Scripted::new(schedule);
            let _ = sim.run(&mut replay, max_steps);
            drop(sim);
            let fp = pasted.report.failure_pattern.clone();
            let mut sigma_hist: History<QuorumSample> = History::new();
            let mut omega_hist: History<LeaderSample> = History::new();
            for (p, t, s) in rec.history().iter() {
                sigma_hist.record(p, t, s.sigma);
                omega_hist.record(p, t, s.omega);
            }
            // Lemma 11 step 5: extend the history past t_GST — in the
            // admissible continuation every correct process keeps querying
            // and sees the stabilized LD.
            let mut post_oracle = mk_oracle();
            for (i, p) in ProcessId::all(n).enumerate() {
                if fp.crash_time(p).is_none() {
                    let t = Time::new(tgst.raw() + 1 + i as u64);
                    let s = post_oracle.sample(p, t, &fp);
                    sigma_hist.record(p, t, s.sigma);
                    omega_hist.record(p, t, s.omega);
                }
            }
            (
                check_partition_sigma(&sigma_hist, &spec.all_parts(), &fp).is_ok(),
                check_sigma_k(&sigma_hist, k, &fp).is_ok(),
                check_omega_k(&omega_hist, k, &fp).is_ok(),
            )
        }
        None => (false, false, false),
    };

    Some(Theorem10Demo {
        n,
        k,
        analysis,
        partition_sigma_valid,
        sigma_k_valid,
        omega_k_valid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem1::Theorem1Outcome;

    #[test]
    fn leader_adopt_is_refuted_for_all_intermediate_k() {
        for (n, k) in [(5, 2), (5, 3), (6, 2), (6, 3), (6, 4), (8, 5)] {
            let d = demo(n, k, 100_000).expect("2 ≤ k ≤ n−2");
            assert!(
                d.analysis.condition_a,
                "n={n} k={k}: blocks decide in isolation"
            );
            assert!(
                d.analysis.condition_b_verified,
                "n={n} k={k}: pasting verified"
            );
            assert!(d.refuted(), "n={n} k={k}");
            assert!(
                d.history_legal_for_sigma_omega_k(),
                "n={n} k={k}: the defeating run must be a legal (Σk,Ωk) run"
            );
        }
    }

    #[test]
    fn violation_is_direct_with_split_dbar() {
        // The split scheduler makes ≥ 2 of D̄'s window leaders decide their
        // own values; with the k−1 singletons that exceeds k outright.
        let d = demo(6, 3, 100_000).unwrap();
        match d.analysis.outcome {
            Theorem1Outcome::DirectViolation { distinct, k } => {
                assert!(distinct > k, "{distinct} ≤ {k}");
            }
            ref other => panic!("expected a direct violation, got {other:?}"),
        }
    }

    #[test]
    fn demo_rejects_solvable_endpoints() {
        assert!(
            demo(6, 1, 1_000).is_none(),
            "k = 1: (Σ1,Ω1) solves consensus"
        );
        assert!(demo(6, 5, 1_000).is_none(), "k = n−1: Σ(n−1) suffices");
    }

    #[test]
    fn demo_ld_intersects_dbar_in_exactly_two() {
        let spec = PartitionSpec::theorem10(7, 3).unwrap();
        let ld = demo_ld(&spec);
        assert_eq!(ld.len(), 3);
        assert_eq!(ld.intersection(spec.dbar()).len(), 2);
    }

    #[test]
    fn beyond_bouzid_travers_points_are_refuted() {
        // (n, k) = (6, 4): 2k² = 32 > 6, outside the old bound's reach but
        // squarely inside Theorem 10.
        assert!(crate::borders::theorem10_impossible(6, 4));
        assert!(!crate::borders::bouzid_travers_impossible(6, 4));
        let d = demo(6, 4, 100_000).unwrap();
        assert!(d.refuted());
    }
}
