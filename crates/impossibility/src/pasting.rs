//! Run pasting: the executable Lemmas 11 and 12.
//!
//! Lemma 12 of the paper constructs a run `α` in which *every* partition
//! block decides in isolation: take the solo runs `αi` (all processes
//! outside `Di` initially dead), then paste them together — all processes
//! fail/step exactly as in their `αi`, and all cross-block communication is
//! delayed until every correct process has decided. Lemma 11 is the
//! corresponding replacement step for a single block.
//!
//! Our simulator realizes the construction literally:
//!
//! 1. run each block solo and record its trace;
//! 2. extract the per-block schedules ([`kset_sim::Trace::schedule`]) and
//!    interleave them ([`kset_sim::sched::scripted::Scripted::interleave`]);
//! 3. replay the interleaved schedule in the *full* system (no initial
//!    deaths): deliveries are per-source counts, and solo schedules only
//!    ever name in-block sources, so cross-block messages stay buffered —
//!    the replay is the pasted run;
//! 4. verify (Definition 2) that every process is indistinguishable-until-
//!    decision between its solo run and the pasted run.
//!
//! Step 4 turns the lemma from a construction into a *checked* construction:
//! if the pasting machinery (or the determinism assumptions behind it) were
//! wrong, [`PastedRun::verified`] would be `false`.

use kset_sim::indist::indistinguishable_for_set;
use kset_sim::sched::round_robin::RoundRobin;
use kset_sim::sched::scripted::Scripted;
use kset_sim::{
    CrashPlan, NoOracle, Oracle, Process, ProcessId, ProcessSet, RunReport, Simulation,
};

/// A solo run of one block: everyone else initially dead.
#[derive(Debug, Clone)]
pub struct SoloRun<V> {
    /// The isolated block.
    pub block: ProcessSet,
    /// The run report.
    pub report: RunReport<V>,
}

/// The result of the Lemma 12 construction.
#[derive(Debug, Clone)]
pub struct PastedRun<V> {
    /// The solo runs, in block order.
    pub solos: Vec<SoloRun<V>>,
    /// The pasted run of the full system.
    pub report: RunReport<V>,
    /// Whether every process's pasted view is indistinguishable (until
    /// decision) from its solo view — the Lemma 11/12 correctness check.
    pub verified: bool,
}

impl<V: Clone + Ord> PastedRun<V> {
    /// Number of distinct decisions in the pasted run — the quantity that
    /// defeats k-Agreement in the impossibility arguments.
    pub fn distinct_decisions(&self) -> usize {
        self.report.distinct_decisions.len()
    }
}

/// Runs `block` solo (all other processes initially dead) under fair
/// round-robin, with `extra_plan` failures inside the block.
pub fn solo_run<P, O>(
    inputs: Vec<P::Input>,
    oracle: O,
    block: ProcessSet,
    extra_plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let n = inputs.len();
    let mut plan = extra_plan;
    for p in ProcessId::all(n) {
        if !block.contains(p) {
            plan = plan.with_initially_dead(p);
        }
    }
    // kset-lint: allow(unchecked-capacity): theorem-construction entry point mirroring Simulation::with_oracle's documented panicking contract for oversized input vectors
    let mut sim: Simulation<P, O> = Simulation::with_oracle(inputs, oracle, plan);
    sim.run_to_report(&mut RoundRobin::new(), max_steps)
}

/// Oracle-less [`solo_run`].
pub fn solo_run_no_fd<P>(
    inputs: Vec<P::Input>,
    block: ProcessSet,
    extra_plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process<Fd = ()>,
{
    solo_run::<P, NoOracle>(inputs, NoOracle, block, extra_plan, max_steps)
}

/// A factory of per-block solo-run schedulers: called with the block index
/// and the block, returns the adversary driving that block's solo run.
/// Lemma 12 only requires *some* admissible solo run per block; varying the
/// intra-block schedule is how the Theorem 10 adversary makes `D̄` split.
pub type BlockSchedulers<'a, M> =
    &'a dyn Fn(usize, ProcessSet) -> Box<dyn kset_sim::sched::Scheduler<M>>;

/// The full Lemma 12 construction with a failure-detector oracle factory:
/// `mk_oracle()` must produce observationally identical oracles for the
/// solo and pasted executions (e.g. clones of a
/// [`kset_fd::PartitionSigmaOmega`]).
pub fn lemma12<P, O>(
    make_inputs: impl Fn() -> Vec<P::Input>,
    mk_oracle: impl Fn() -> O,
    parts: &[ProcessSet],
    max_steps: u64,
) -> PastedRun<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let default: BlockSchedulers<'_, P::Msg> = &|_, _| Box::new(RoundRobin::new());
    lemma12_with::<P, O>(make_inputs, mk_oracle, parts, default, max_steps)
}

/// [`lemma12`] with per-block scheduler control for the solo runs.
pub fn lemma12_with<P, O>(
    make_inputs: impl Fn() -> Vec<P::Input>,
    mk_oracle: impl Fn() -> O,
    parts: &[ProcessSet],
    mk_sched: BlockSchedulers<'_, P::Msg>,
    max_steps: u64,
) -> PastedRun<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    // 1. Solo runs.
    let mut solos = Vec::with_capacity(parts.len());
    for (i, &block) in parts.iter().enumerate() {
        let n = make_inputs().len();
        let mut plan = CrashPlan::none();
        for p in ProcessId::all(n) {
            if !block.contains(p) {
                plan = plan.with_initially_dead(p);
            }
        }
        // kset-lint: allow(unchecked-capacity): theorem-construction entry point mirroring Simulation::with_oracle's documented panicking contract for oversized input vectors
        let mut sim: Simulation<P, O> = Simulation::with_oracle(make_inputs(), mk_oracle(), plan);
        let mut sched = mk_sched(i, block);
        let report = sim.run_to_report(&mut *sched, max_steps);
        solos.push(SoloRun { block, report });
    }
    // 2.–3. Interleave the schedules and replay in the full system.
    let schedules: Vec<_> = solos.iter().map(|s| s.report.trace.schedule()).collect();
    let merged = Scripted::interleave(schedules);
    let mut sim: Simulation<P, O> =
        // kset-lint: allow(unchecked-capacity): theorem-construction entry point mirroring Simulation::with_oracle's documented panicking contract for oversized input vectors
        Simulation::with_oracle(make_inputs(), mk_oracle(), CrashPlan::none());
    let mut replay = Scripted::new(merged);
    let report = sim.run_to_report(&mut replay, max_steps);
    // 4. Verify per-block indistinguishability.
    let verified = solos
        .iter()
        .all(|solo| indistinguishable_for_set(&report.trace, &solo.report.trace, solo.block));
    PastedRun {
        solos,
        report,
        verified,
    }
}

/// Oracle-less [`lemma12`].
pub fn lemma12_no_fd<P>(
    make_inputs: impl Fn() -> Vec<P::Input>,
    parts: &[ProcessSet],
    max_steps: u64,
) -> PastedRun<P::Output>
where
    P: Process<Fd = ()>,
{
    lemma12::<P, NoOracle>(make_inputs, || NoOracle, parts, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_core::algorithms::two_stage::{two_stage_inputs, TwoStage};
    use kset_core::task::distinct_proposals;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn solo_run_decides_within_block() {
        // Two-stage, L = 2, block {p1, p2} of a 4-process system.
        let block: ProcessSet = [pid(0), pid(1)].into();
        let report = solo_run_no_fd::<TwoStage>(
            two_stage_inputs(2, &distinct_proposals(4)),
            block,
            CrashPlan::none(),
            50_000,
        );
        assert!(report.decisions[0].is_some());
        assert!(report.decisions[1].is_some());
        assert_eq!(report.decisions[2], None);
        assert_eq!(report.decisions[3], None);
    }

    #[test]
    fn lemma12_pastes_two_blocks_verifiably() {
        // n = 4, L = 2: blocks {p1,p2} and {p3,p4} each decide solo; the
        // pasted run reproduces both and carries 2 distinct decisions.
        let parts: Vec<ProcessSet> = vec![[pid(0), pid(1)].into(), [pid(2), pid(3)].into()];
        let pasted = lemma12_no_fd::<TwoStage>(
            || two_stage_inputs(2, &distinct_proposals(4)),
            &parts,
            50_000,
        );
        assert!(pasted.verified, "Lemma 12 check must pass");
        assert_eq!(pasted.distinct_decisions(), 2);
        // No process crashed in the pasted run: it is a failure-free run
        // with 2 distinct decisions — the essence of the partitioning
        // argument.
        assert_eq!(pasted.report.failure_pattern.num_faulty(), 0);
        assert!(pasted.report.decisions.iter().all(Option::is_some));
    }

    #[test]
    fn lemma12_scales_to_many_singleton_blocks() {
        // L = 1: every singleton decides alone; pasting yields n distinct
        // decisions in a crash-free run (the wait-free catastrophe of
        // Section V).
        let n = 6;
        let parts: Vec<ProcessSet> = (0..n).map(|i| ProcessSet::singleton(pid(i))).collect();
        let pasted = lemma12_no_fd::<TwoStage>(
            || two_stage_inputs(1, &distinct_proposals(n)),
            &parts,
            50_000,
        );
        assert!(pasted.verified);
        assert_eq!(pasted.distinct_decisions(), n);
    }

    #[test]
    fn pasted_trace_preserves_solo_state_sequences_exactly() {
        use kset_sim::indist::{compare_views, ViewComparison};
        let parts: Vec<ProcessSet> = vec![
            [pid(0), pid(1), pid(2)].into(),
            [pid(3), pid(4), pid(5)].into(),
        ];
        let pasted = lemma12_no_fd::<TwoStage>(
            || two_stage_inputs(3, &distinct_proposals(6)),
            &parts,
            50_000,
        );
        assert!(pasted.verified);
        for solo in &pasted.solos {
            for p in solo.block {
                let cmp = compare_views(&pasted.report.trace, &solo.report.trace, p);
                assert_eq!(
                    cmp,
                    ViewComparison::EqualUntilDecision,
                    "{p} must replay its solo view exactly"
                );
            }
        }
    }
}
