//! Partition attack: watch the Theorem 10 adversary defeat a (Σk, Ωk)
//! candidate algorithm.
//!
//! Builds the paper's construction end to end: the partition failure
//! detector (Σ′k, Ω′k) of Definition 7, the solo runs of the blocks
//! `D1, …, D(k−1)` and `D̄` (Lemma 12), the pasted run, the Definition 2
//! indistinguishability check, and the Lemma 9 validation that the
//! defeating history is a perfectly legal (Σk, Ωk) history.
//!
//! ```sh
//! cargo run --example partition_attack [n] [k]
//! ```

use kset::impossibility::theorem10::demo;
use kset::impossibility::Theorem1Outcome;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let k: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    println!("== Theorem 10 attack: (Σ{k}, Ω{k}) cannot solve {k}-set agreement (n = {n}) ==\n");
    let Some(demo) = demo(n, k, 200_000) else {
        println!(
            "k = {k} is outside 2 ≤ k ≤ n−2 = {}, where (Σk, Ωk) suffices",
            n - 2
        );
        println!("(Corollary 13: k = 1 via (Σ,Ω)-consensus, k = n−1 via loneliness).");
        return;
    };

    println!(
        "partition: D̄ = {{p1, …, p{}}}, plus {} singleton blocks",
        n - k + 1,
        k - 1
    );
    let pasted = demo.analysis.pasted.as_ref().expect("evidence");
    println!("\n-- solo runs (Lemma 12) --");
    for solo in &pasted.solos {
        let members: Vec<String> = solo.block.iter().map(|p| p.to_string()).collect();
        let decisions: Vec<String> = solo
            .block
            .iter()
            .filter_map(|p| solo.report.decisions[p.index()].map(|v| format!("{p}→{v}")))
            .collect();
        println!(
            "  block {{{}}} decided in isolation: {}",
            members.join(","),
            decisions.join(", ")
        );
    }

    println!("\n-- pasted run --");
    println!(
        "  pasting verified (Definition 2, per block): {}",
        pasted.verified
    );
    println!(
        "  faulty processes in the pasted run: {}",
        pasted.report.failure_pattern.num_faulty()
    );
    let decisions: Vec<String> = pasted
        .report
        .decisions
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|v| format!("p{}→{v}", i + 1)))
        .collect();
    println!("  decisions: {}", decisions.join(", "));
    println!(
        "  distinct decision values: {}",
        pasted.distinct_decisions()
    );

    println!("\n-- classification --");
    match &demo.analysis.outcome {
        Theorem1Outcome::DirectViolation { distinct, k } => {
            println!("  DIRECT VIOLATION: {distinct} distinct decisions > k = {k}");
        }
        Theorem1Outcome::ReductionEstablished => {
            println!("  reduction established: A|D̄ would solve consensus in ⟨D̄⟩ — impossible");
        }
        Theorem1Outcome::ConditionAFailed { block } => {
            println!("  condition (A) failed for block {block:?} — candidate not flagged");
        }
    }

    println!("\n-- Lemma 9 validation of the defeating history --");
    println!(
        "  per-block Σ (Definition 7, part 1):  {}",
        ok(demo.partition_sigma_valid)
    );
    println!(
        "  plain Σ{k} intersection + liveness:   {}",
        ok(demo.sigma_k_valid)
    );
    println!(
        "  plain Ω{k} validity + leadership:     {}",
        ok(demo.omega_k_valid)
    );
    println!(
        "\nThe run that defeats the candidate is a legal (Σ{k}, Ω{k}) run: {}",
        ok(demo.history_legal_for_sigma_omega_k())
    );
    assert!(demo.refuted());
    println!("verdict: candidate refuted — as Theorem 10 demands ✓");
}

fn ok(b: bool) -> &'static str {
    if b {
        "valid ✓"
    } else {
        "INVALID ✗"
    }
}
