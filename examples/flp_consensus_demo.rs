//! FLP two-stage consensus with initially dead processes (Section VI, base
//! case), plus the matching impossibility when half the system is dead.
//!
//! With a majority of correct processes (`n > 2f`), the two-stage protocol
//! with threshold `L = ⌈(n+1)/2⌉` reaches consensus: the first-stage graph
//! has a unique source component (an initial clique), and everyone decides
//! the value of its minimum-id member. At `f = n/2` the partition argument
//! (Theorem 8's borderline) produces a failure-free run with two decisions.
//!
//! ```sh
//! cargo run --example flp_consensus_demo
//! ```

use kset::core::algorithms::two_stage::{consensus_threshold, two_stage_inputs, TwoStage};
use kset::core::runner::{run_round_robin, run_seeded};
use kset::core::task::{distinct_proposals, KSetTask};
use kset::impossibility::theorem8::border_demo;
use kset::sim::{CrashPlan, ProcessId};

fn main() {
    let n = 7;
    let f = 3; // minority: n > 2f
    let l = consensus_threshold(n);
    println!("== FLP initial-crash consensus (n = {n}, f = {f}, L = {l}) ==\n");

    let values = distinct_proposals(n);
    let inputs = two_stage_inputs(l, &values);
    let task = KSetTask::consensus(n);

    // Try every set of f "low" ids dead, then f "high" ids dead, then a mix.
    let patterns: Vec<Vec<ProcessId>> = vec![
        (0..f).map(ProcessId::new).collect(),
        (n - f..n).map(ProcessId::new).collect(),
        vec![ProcessId::new(1), ProcessId::new(3), ProcessId::new(5)],
    ];
    for dead in &patterns {
        let report = run_round_robin::<TwoStage>(
            inputs.clone(),
            CrashPlan::initially_dead(dead.iter().copied()),
            200_000,
        );
        let verdict = task.judge(&values, &report);
        let who: Vec<String> = dead.iter().map(ToString::to_string).collect();
        let decided = report
            .distinct_decisions
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "dead = {{{}}} → consensus on {{{decided}}}; {verdict}",
            who.join(",")
        );
        assert!(verdict.holds());
    }

    println!("\n-- hostile schedules (10 seeds) --");
    for seed in 0..10 {
        let report = run_seeded::<TwoStage>(
            inputs.clone(),
            CrashPlan::initially_dead((0..f).map(ProcessId::new)),
            seed,
            2_000_000,
        );
        let verdict = task.judge(&values, &report);
        assert!(verdict.holds(), "seed {seed}: {verdict}");
    }
    println!("consensus under every tested schedule ✓");

    println!("\n== and the matching impossibility at f = n/2 ==");
    // n = 8, k = 1 ⇒ borderline f = 4: two halves decide separately.
    let demo = border_demo(8, 1, 200_000).expect("borderline layout");
    println!(
        "n = 8, f = {}: pasted failure-free run has {} distinct decisions (verified: {})",
        demo.f,
        demo.pasted.distinct_decisions(),
        demo.pasted.verified,
    );
    assert!(demo.violates_k_agreement());
    println!("consensus impossible once half the system may be initially dead ✓");
}
