//! Quickstart: solve k-set agreement with the paper's two-stage protocol.
//!
//! Runs the Section VI algorithm (threshold `L = n − f`) on a system of
//! `n = 6` processes with `f = 3` initial crashes — inside the Theorem 8
//! solvable region (`kn = 12 > (k+1)f = 9` for `k = 2`) — under both a fair
//! and a hostile random schedule, and judges the runs against the k-set
//! agreement specification.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kset::core::algorithms::two_stage::{
    decision_bound, kset_threshold, two_stage_inputs, TwoStage,
};
use kset::core::runner::{run_round_robin, run_seeded};
use kset::core::task::{distinct_proposals, KSetTask};
use kset::sim::{CrashPlan, ProcessId};

fn main() {
    let n = 6;
    let f = 3;
    let k = 2;
    println!("== kset quickstart: two-stage k-set agreement ==");
    println!("n = {n} processes, f = {f} initial crashes, k = {k}");
    println!(
        "Theorem 8: solvable iff kn > (k+1)f  ⇒  {} > {}: ok",
        k * n,
        (k + 1) * f
    );

    let l = kset_threshold(n, f);
    println!(
        "waiting threshold L = n − f = {l}; decision bound ⌊n/L⌋ = {}",
        decision_bound(n, l)
    );

    let values = distinct_proposals(n);
    let inputs = two_stage_inputs(l, &values);
    let dead: Vec<ProcessId> = (0..f).map(|i| ProcessId::new(n - 1 - i)).collect();
    println!(
        "proposals: {values:?}; initially dead: {:?}",
        dead.iter().map(ToString::to_string).collect::<Vec<_>>()
    );

    // Fair schedule.
    let report = run_round_robin::<TwoStage>(
        inputs.clone(),
        CrashPlan::initially_dead(dead.clone()),
        100_000,
    );
    let verdict = KSetTask::new(n, k).judge(&values, &report);
    println!("\n-- fair round-robin schedule --");
    print_outcome(&report.decisions, &verdict);

    // Hostile random schedules.
    println!("\n-- 5 hostile random schedules --");
    for seed in 0..5 {
        let report = run_seeded::<TwoStage>(
            inputs.clone(),
            CrashPlan::initially_dead(dead.clone()),
            seed,
            2_000_000,
        );
        let verdict = KSetTask::new(n, k).judge(&values, &report);
        println!("seed {seed}: {verdict}");
        assert!(
            verdict.holds(),
            "Theorem 8's algorithm must withstand any schedule"
        );
    }
    println!("\nall runs satisfy k-Agreement, Validity and Termination ✓");
}

fn print_outcome(decisions: &[Option<u64>], verdict: &kset::core::Verdict) {
    for (i, d) in decisions.iter().enumerate() {
        match d {
            Some(v) => println!("  p{} decided {v}", i + 1),
            None => println!("  p{} (initially dead)", i + 1),
        }
    }
    println!("  verdict: {verdict}");
}
