//! Model checker: exhaustively verify (or refute) k-set agreement on
//! small systems.
//!
//! Randomized schedules can only *witness* correctness; the bounded
//! explorer enumerates **every** scheduling and delivery choice, so for
//! small n it verifies safety outright — and finds violating schedules of
//! flawed algorithms automatically, including the Theorem 10 violation,
//! with no handcrafted adversary at all.
//!
//! ```sh
//! cargo run --release --example model_checker
//! ```

use std::collections::BTreeSet;

use kset::core::algorithms::naive::LeaderAdopt;
use kset::core::algorithms::two_stage::{two_stage_inputs, TwoStage};
use kset::core::task::distinct_proposals;
use kset::fd::PartitionSigmaOmega;
use kset::sim::explore::{explore, Branching, ExploreConfig};
use kset::sim::{CrashPlan, ProcessId, ProcessSet, Simulation, Time};

fn main() {
    println!("== bounded model checking of k-set agreement ==\n");

    // 1. Verify: two-stage protocol, n = 3, L = 2 — consensus under EVERY
    //    schedule (within the bound).
    let sim: Simulation<TwoStage, _> = Simulation::new(
        two_stage_inputs(2, &distinct_proposals(3)),
        CrashPlan::none(),
    );
    let config = ExploreConfig {
        max_depth: 14,
        max_states: 400_000,
        branching: Branching::NoneOrAll,
    };
    let report = explore(&sim, &config, |s| {
        let d: BTreeSet<u64> = s.decisions().iter().flatten().copied().collect();
        if d.len() > 1 {
            Err(format!("{} distinct decisions", d.len()))
        } else {
            Ok(())
        }
    });
    println!("two-stage (n=3, L=2), property: consensus");
    println!(
        "  explored {} configurations, {} terminal; violation: {}",
        report.states_expanded,
        report.terminals,
        if report.violation.is_none() {
            "none"
        } else {
            "FOUND"
        },
    );
    assert!(report.violation.is_none());

    // 2. Refute: the (Σ2, Ω2) LeaderAdopt candidate on n = 4, k = 2, with
    //    the partition detector of Definition 7 — the explorer finds the
    //    Theorem 10 violation by itself.
    let pid = ProcessId::new;
    let blocks: Vec<ProcessSet> = vec![[pid(0), pid(1), pid(2)].into(), [pid(3)].into()];
    let oracle = PartitionSigmaOmega::new(4, blocks, Time::new(1_000_000), [pid(0), pid(1)].into());
    let sim: Simulation<LeaderAdopt, _> =
        Simulation::with_oracle(distinct_proposals(4), oracle, CrashPlan::none());
    let report = explore(&sim, &config, |s| {
        let d: BTreeSet<u64> = s.decisions().iter().flatten().copied().collect();
        if d.len() > 2 {
            Err(format!("{} distinct decisions > k = 2", d.len()))
        } else {
            Ok(())
        }
    });
    println!("\nLeaderAdopt with (Σ'2, Ω'2) (n=4), property: 2-agreement");
    match &report.violation {
        Some(v) => {
            println!(
                "  VIOLATION found after exploring {} configurations:",
                report.states_expanded
            );
            println!("  reason: {}", v.reason);
            println!("  schedule ({} steps):", v.path.len());
            for (i, c) in v.path.iter().enumerate() {
                println!("    {}. step {} with {:?}", i + 1, c.pid, c.delivery);
            }
            println!("  — the Theorem 10 partitioning run, rediscovered automatically.");
        }
        None => unreachable!("Theorem 10 guarantees a violation exists"),
    }
}
