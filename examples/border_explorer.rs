//! Border explorer: print the solvability maps of Theorems 2, 8 and 10.
//!
//! Regenerates, as ASCII tables, the three borders the paper pins down:
//! the partially synchronous border `k ≤ (n−1)/(n−f)` (Theorem 2), the
//! initial-crash border `kn > (k+1)f` (Theorem 8), and the failure-detector
//! range `(Σk, Ωk)` solves (Corollary 13 vs Theorem 10), including the
//! older Bouzid–Travers bound for comparison.
//!
//! ```sh
//! cargo run --example border_explorer [n]
//! ```

use kset::impossibility::{
    bouzid_travers_impossible, corollary13_solvable, theorem10_impossible, theorem2_impossible,
    theorem8_solvable,
};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    assert!((3..=16).contains(&n), "pick 3 ≤ n ≤ 16");

    println!("== Theorem 2: k-set agreement with synchronous processes /");
    println!("   asynchronous communication, f failures (n = {n}) ==");
    println!("   ('X' = impossible, '.' = not covered by the theorem)\n");
    header(n);
    for f in 1..n {
        print!("f={f:2} |");
        for k in 1..n {
            let c = if theorem2_impossible(n, f, k) {
                'X'
            } else {
                '.'
            };
            print!(" {c} ");
        }
        println!();
    }

    println!("\n== Theorem 8: f INITIALLY DEAD processes (n = {n}) ==");
    println!("   ('S' = solvable, two-stage algorithm matches; 'X' = impossible)\n");
    header(n);
    for f in 1..n {
        print!("f={f:2} |");
        for k in 1..n {
            let c = if theorem8_solvable(n, f, k) { 'S' } else { 'X' };
            print!(" {c} ");
        }
        println!();
    }

    println!("\n== Theorem 10 / Corollary 13: (Σk, Ωk) in ⟨M_ASYNC⟩ (n = {n}) ==");
    println!("   paper:          'S' solvable, 'X' impossible");
    println!("   Bouzid–Travers: impossible only while 2k² ≤ n\n");
    print!("          ");
    for k in 1..n {
        print!(" k={k}");
    }
    println!();
    print!("paper:    ");
    for k in 1..n {
        let c = if corollary13_solvable(n, k) { 'S' } else { 'X' };
        print!("  {c} ");
    }
    println!();
    print!("BT [5]:   ");
    for k in 1..n {
        let c = if bouzid_travers_impossible(n, k) {
            'X'
        } else if k == 1 || k == n - 1 {
            'S'
        } else {
            '?'
        };
        print!("  {c} ");
    }
    println!("\n          ('?' = not settled by the older bound — Theorem 10 closes these)");

    let closed: Vec<usize> = (2..n - 1)
        .filter(|k| theorem10_impossible(n, *k) && !bouzid_travers_impossible(n, *k))
        .collect();
    println!("\nFor n = {n}, Theorem 10 newly settles k ∈ {closed:?}.");
}

fn header(n: usize) {
    print!("     |");
    for k in 1..n {
        print!("k={k} ");
    }
    println!();
    println!("-----+{}", "-".repeat(4 * (n - 1)));
}
