//! Theorem 1 as a design-time bug finder.
//!
//! The paper's Remarks suggest using Theorem 1 to vet candidate algorithms
//! *before* attempting a correctness proof: "if (dec-D) can be satisfied in
//! some runs, i.e., (A) holds, the algorithm is very likely flawed". This
//! demo runs the checker against three candidates in the Theorem 2 model
//! (n = 5, f = 3, k = 2 — inside the impossible region):
//!
//! 1. `DecideOwn` — flagrantly wrong, caught with a direct violation;
//! 2. two-stage with `L = n − f` — subtly wrong in this failure model
//!    (it only handles *initial* crashes), caught through the reduction;
//! 3. two-stage with the majority threshold — not flagged (condition (A)
//!    fails), matching the fact that it is a correct consensus algorithm
//!    for the initial-crash model.
//!
//! ```sh
//! cargo run --example theorem1_checker_demo
//! ```

use kset::core::algorithms::naive::DecideOwn;
use kset::core::algorithms::two_stage::{consensus_threshold, two_stage_inputs, TwoStage};
use kset::core::task::distinct_proposals;
use kset::impossibility::{analyze_no_fd, PartitionSpec, Theorem1Outcome};

fn main() {
    let (n, f, k) = (5, 3, 2);
    println!("== Theorem 1 checker: vetting candidates for {k}-set agreement");
    println!("   (n = {n}, f = {f}; Theorem 2 region: impossible) ==\n");
    let spec = PartitionSpec::theorem2(n, f, k).expect("impossible region has a layout");
    println!(
        "layout: D1 = {:?}, D̄ = {:?}\n",
        spec.blocks()[0]
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>(),
        spec.dbar()
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>(),
    );

    // Candidate 1: decide own value.
    let analysis = analyze_no_fd::<DecideOwn>(|| distinct_proposals(n), &spec, 50_000);
    report(
        "DecideOwn (wait-free naive)",
        &analysis.outcome,
        analysis.refutes(true),
    );

    // Candidate 2: the Theorem 8 algorithm, misapplied to a model with
    // mid-run crash power.
    let analysis = analyze_no_fd::<TwoStage>(
        || two_stage_inputs(n - f, &distinct_proposals(n)),
        &spec,
        100_000,
    );
    report(
        "two-stage with L = n − f = 2",
        &analysis.outcome,
        analysis.refutes(true),
    );

    // Candidate 3: the majority-threshold consensus protocol.
    let analysis = analyze_no_fd::<TwoStage>(
        || two_stage_inputs(consensus_threshold(n), &distinct_proposals(n)),
        &spec,
        50_000,
    );
    report(
        "two-stage with majority L = ⌈(n+1)/2⌉ = 3",
        &analysis.outcome,
        analysis.refutes(true),
    );

    println!("\nThe checker separates flawed candidates (conditions (A)–(D) constructible)");
    println!("from sound ones (condition (A) already fails) — without writing a proof.");
}

fn report(name: &str, outcome: &Theorem1Outcome, refuted: bool) {
    println!("candidate: {name}");
    match outcome {
        Theorem1Outcome::DirectViolation { distinct, k } => {
            println!(
                "  → DIRECT VIOLATION: one constructed run shows {distinct} > k = {k} decisions"
            );
        }
        Theorem1Outcome::ReductionEstablished => {
            println!("  → reduction established: A|D̄ would solve consensus in ⟨D̄⟩ (impossible)");
        }
        Theorem1Outcome::ConditionAFailed { block } => {
            let members: Vec<String> = block.iter().map(|p| p.to_string()).collect();
            println!(
                "  → not flagged: block {{{}}} cannot decide in isolation",
                members.join(",")
            );
        }
    }
    println!("  refuted by Theorem 1: {refuted}\n");
}
